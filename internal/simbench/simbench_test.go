package simbench

import (
	"reflect"
	"testing"
)

// TestWorkloadPathsAgree is the package's own differential check: the two
// pipelines must produce identical Results on the benchmark workload.
func TestWorkloadPathsAgree(t *testing.T) {
	w, err := Matmul(16, []int64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	scalar := w.RunScalar()
	batched := w.RunBatched(0)
	if !reflect.DeepEqual(scalar, batched) {
		t.Fatalf("pipelines diverge on %s:\nscalar  %+v\nbatched %+v", w.Name, scalar, batched)
	}
	if scalar.Accesses != w.Accesses {
		t.Fatalf("simulated %d accesses, workload declares %d", scalar.Accesses, w.Accesses)
	}
}

// TestEngineWorkloadsAgree plays the same workload through the sampled and
// analytic engines and checks them against the exact pipeline where the
// contract is exact: totals always; sampled misses at rate 1 (the default
// for this sub-64K address space) bit-for-bit.
func TestEngineWorkloadsAgree(t *testing.T) {
	w, err := Matmul(16, []int64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	exact := w.RunBatched(0)
	sampled := w.RunSampled(-1, 0)
	if !reflect.DeepEqual(exact.Misses, sampled.Misses) || exact.Distinct != sampled.Distinct {
		t.Fatalf("sampled at rate 1 diverges from exact:\nexact   %+v\nsampled %+v", exact, sampled)
	}
	an, err := w.RunAnalytic()
	if err != nil {
		t.Fatal(err)
	}
	if an.Accesses != exact.Accesses || an.Distinct != exact.Distinct {
		t.Fatalf("analytic totals %d/%d, exact %d/%d", an.Accesses, an.Distinct, exact.Accesses, exact.Distinct)
	}
}

// TestSweepPathsAgree checks the sweep corpus through both pipelines at
// two pool widths.
func TestSweepPathsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep corpus is slow")
	}
	cases, err := SweepCases()
	if err != nil {
		t.Fatal(err)
	}
	cases = cases[:3]
	ref, err := RunSweep(cases, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSweep(cases, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("sweep pipelines diverge")
	}
}

// benchWorkload caches the compiled benchmark workload across benchmarks.
var benchWorkload *Workload

func workload(b *testing.B) *Workload {
	if benchWorkload == nil {
		w, err := Matmul(64, []int64{8, 8, 8})
		if err != nil {
			b.Fatal(err)
		}
		benchWorkload = w
	}
	return benchWorkload
}

func reportPerAccess(b *testing.B, accesses int64) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*accesses), "ns/access")
}

// BenchmarkSimScalar is the pre-batching baseline: per-access tree walk
// feeding per-access stack simulation.
func BenchmarkSimScalar(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunScalar()
	}
	reportPerAccess(b, w.Accesses)
}

// BenchmarkSimBatched is the batched pipeline at the default block size.
func BenchmarkSimBatched(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunBatched(0)
	}
	reportPerAccess(b, w.Accesses)
}

// BenchmarkSimSampled is the sampled engine on the benchmark workload at
// the auto rate (rate 1 for this address space, so this measures the
// sampling filter's overhead on top of BenchmarkSimBatched).
func BenchmarkSimSampled(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunSampled(-1, 0)
	}
	reportPerAccess(b, w.Accesses)
}

// BenchmarkSimAnalytic is the closed-form engine on the benchmark
// workload: per-op cost is independent of the trace length.
func BenchmarkSimAnalytic(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunAnalytic(); err != nil {
			b.Fatal(err)
		}
	}
	reportPerAccess(b, w.Accesses)
}

// BenchmarkSweepScalarSeq is the validate differential sweep, sequential
// scalar — the pre-PR configuration.
func BenchmarkSweepScalarSeq(b *testing.B) {
	cases, err := SweepCases()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSweep(cases, 1, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepBatchedSharded is the sweep on the batched pipeline with an
// 8-wide worker pool.
func BenchmarkSweepBatchedSharded(b *testing.B) {
	cases, err := SweepCases()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSweep(cases, 8, false); err != nil {
			b.Fatal(err)
		}
	}
}
