package smp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
)

func TestRunParallelMatmulCorrect(t *testing.T) {
	const n = 32
	a, b := kernels.NewMatrix(n, n), kernels.NewMatrix(n, n)
	a.FillSequential(0.3)
	b.FillSequential(0.7)
	want := kernels.NewMatrix(n, n)
	if err := kernels.MatmulNaive(a, b, want); err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 2, 4} {
		c := kernels.NewMatrix(n, n)
		if err := RunParallelMatmul(a, b, c, 8, 8, 8, procs); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if d := kernels.MaxAbsDiff(want, c); d > 1e-9 {
			t.Errorf("procs=%d deviates by %g", procs, d)
		}
	}
	c := kernels.NewMatrix(n, n)
	if err := RunParallelMatmul(a, b, c, 8, 8, 8, 3); err == nil {
		t.Error("3 procs should not divide 4 row tiles")
	}
	if err := RunParallelMatmul(a, b, c, 8, 8, 8, 0); err == nil {
		t.Error("0 procs accepted")
	}
}

// TestMatmulRowPartitionPrediction: §7's claim for Fig. 9 — each
// processor's subproblem is the sequential problem with NI scaled by 1/P,
// touching a row slice of A and C and all of B.
func TestMatmulRowPartitionPrediction(t *testing.T) {
	nest, err := kernels.TiledMatmulDims()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env, err := kernels.MatmulDimsEnv(64, 64, 64, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{SplitSymbol: "NI", CacheElems: 512, Model: DefaultCostModel()}
	var prev *Prediction
	for _, p := range []int64{1, 2, 4} {
		cfg.Procs = p
		pred, err := Predict(a, env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Flops scale exactly 1/P.
		if pred.PerProcFlops*p != 2*64*64*64 {
			t.Errorf("P=%d per-proc flops %d", p, pred.PerProcFlops)
		}
		// Per-processor compulsory floor: slice of A and C plus all of B.
		if prev != nil && pred.PerProcMisses >= prev.PerProcMisses {
			t.Errorf("P=%d per-proc misses %d not below P=%d's %d",
				p, pred.PerProcMisses, prev.Procs, prev.PerProcMisses)
		}
		prev = pred
	}
	// Simulation agrees with the model at P=2.
	cfg.Procs = 2
	pm, err := Predict(a, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Simulate(nest, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := pm.PerProcMisses - ps.PerProcMisses
	if d < 0 {
		d = -d
	}
	if d > ps.PerProcMisses/5+3*64*64 {
		t.Errorf("predicted %d vs simulated %d per-proc misses", pm.PerProcMisses, ps.PerProcMisses)
	}
}
