package smp

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/expr"
)

// Speedup returns the parallel speedup of p relative to a baseline
// single-processor prediction under the infinite-bandwidth model.
func Speedup(base, p *Prediction) float64 {
	if p.TimeInfiniteBW == 0 {
		return 0
	}
	return base.TimeInfiniteBW / p.TimeInfiniteBW
}

// Efficiency returns Speedup / P.
func Efficiency(base, p *Prediction) float64 {
	return Speedup(base, p) / float64(p.Procs)
}

// PredictUneven handles processor counts that do not divide the partitioned
// bound: the bound splits into ⌈n/P⌉ for the first n mod P processors and
// ⌊n/P⌋ for the rest (in tile units when the bound is tiled, which is the
// caller's responsibility to respect via divisibility of the chunk by the
// tile size — an error is returned otherwise). The slowest processor
// defines the infinite-bandwidth time; the sum of all processors' misses
// defines the bus-limited time.
func PredictUneven(a *core.Analysis, env expr.Env, cfg Config, tile int64) (*Prediction, error) {
	n, ok := env[cfg.SplitSymbol]
	if !ok {
		return nil, fmt.Errorf("smp: env missing split symbol %s", cfg.SplitSymbol)
	}
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("smp: non-positive processor count")
	}
	if tile <= 0 || n%tile != 0 {
		return nil, fmt.Errorf("smp: tile %d does not divide bound %d", tile, n)
	}
	tiles := n / tile
	if tiles < cfg.Procs {
		return nil, fmt.Errorf("smp: %d processors exceed %d tiles", cfg.Procs, tiles)
	}
	big := tiles % cfg.Procs
	small := tiles / cfg.Procs

	f := a.SymTab().FrameOf(env)
	flopsProg := expr.Compile(Flops(a.Nest), a.SymTab())
	eval := func(chunkTiles int64) (misses, flops int64, err error) {
		f.SetName(cfg.SplitSymbol, chunkTiles*tile)
		misses, err = a.PredictTotalFrame(f, cfg.CacheElems)
		if err != nil {
			return 0, 0, err
		}
		flops, err = flopsProg.Eval(f)
		return misses, flops, err
	}

	mSmall, fSmall, err := eval(small)
	if err != nil {
		return nil, err
	}
	mBig, fBig := mSmall, fSmall
	if big > 0 {
		mBig, fBig, err = eval(small + 1)
		if err != nil {
			return nil, err
		}
	}
	m := cfg.Model
	total := mBig*big + mSmall*(cfg.Procs-big)
	worstCompute := float64(fBig) * m.FlopCost
	return &Prediction{
		Procs:          cfg.Procs,
		PerProcMisses:  mBig, // the critical-path processor
		TotalMisses:    total,
		PerProcFlops:   fBig,
		TimeInfiniteBW: worstCompute + float64(mBig)*m.MissPenalty,
		TimeBusBound:   worstCompute + float64(total)*m.MissPenalty,
	}, nil
}

// FormatPredictions renders a speedup table for a series of predictions
// sharing a baseline (the first entry).
func FormatPredictions(title string, preds []*Prediction, m CostModel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%5s %14s %14s %10s %10s\n", "P", "time-inf(s)", "time-bus(s)", "speedup", "efficiency")
	if len(preds) == 0 {
		return b.String()
	}
	base := preds[0]
	for _, p := range preds {
		fmt.Fprintf(&b, "%5d %14.3f %14.3f %10.2f %10.2f\n",
			p.Procs, p.SecondsInfinite(m), p.SecondsBus(m), Speedup(base, p), Efficiency(base, p))
	}
	return b.String()
}
