package smp

import (
	"strings"
	"testing"

	"repro/internal/kernels"
)

func TestSpeedupEfficiency(t *testing.T) {
	base := &Prediction{Procs: 1, TimeInfiniteBW: 100}
	p4 := &Prediction{Procs: 4, TimeInfiniteBW: 25}
	if s := Speedup(base, p4); s != 4 {
		t.Errorf("speedup %v", s)
	}
	if e := Efficiency(base, p4); e != 1 {
		t.Errorf("efficiency %v", e)
	}
	if Speedup(base, &Prediction{Procs: 2}) != 0 {
		t.Error("zero-time speedup should be 0")
	}
}

func TestPredictUnevenMatchesEvenWhenDivisible(t *testing.T) {
	a := analyzedTwoIndex(t)
	env, err := kernels.TwoIndexEnv(64, 16, 16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Procs: 2, SplitSymbol: "NN", CacheElems: 512, Model: DefaultCostModel()}
	even, err := Predict(a, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	uneven, err := PredictUneven(a, env, cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if even.PerProcMisses != uneven.PerProcMisses || even.TotalMisses != uneven.TotalMisses {
		t.Errorf("even %+v vs uneven %+v", even, uneven)
	}
}

func TestPredictUnevenThreeProcs(t *testing.T) {
	a := analyzedTwoIndex(t)
	env, err := kernels.TwoIndexEnv(64, 16, 16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Procs: 3, SplitSymbol: "NN", CacheElems: 512, Model: DefaultCostModel()}
	// 4 tiles of 16 across 3 processors: chunks 2, 1, 1.
	pred, err := PredictUneven(a, env, cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	// The critical path is the 2-tile processor: slower than a perfect
	// 3-way split but faster than the 1-processor run.
	one := Config{Procs: 1, SplitSymbol: "NN", CacheElems: 512, Model: DefaultCostModel()}
	p1, err := Predict(a, env, one)
	if err != nil {
		t.Fatal(err)
	}
	if !(pred.TimeInfiniteBW < p1.TimeInfiniteBW) {
		t.Errorf("3 procs (%f) not faster than 1 (%f)", pred.TimeInfiniteBW, p1.TimeInfiniteBW)
	}
	two := cfg
	two.Procs = 2
	p2, err := Predict(a, env, two)
	if err != nil {
		t.Fatal(err)
	}
	if pred.TimeInfiniteBW > p2.TimeInfiniteBW {
		t.Errorf("3 procs (%f) slower than 2 procs (%f)", pred.TimeInfiniteBW, p2.TimeInfiniteBW)
	}
	// Errors.
	if _, err := PredictUneven(a, env, cfg, 7); err == nil {
		t.Error("non-dividing tile accepted")
	}
	bad := cfg
	bad.Procs = 99
	if _, err := PredictUneven(a, env, bad, 16); err == nil {
		t.Error("more processors than tiles accepted")
	}
}

func TestTimeInterpolated(t *testing.T) {
	p := Prediction{TimeInfiniteBW: 100, TimeBusBound: 300}
	if got := p.TimeInterpolated(0); got != 100 {
		t.Errorf("alpha 0: %v", got)
	}
	if got := p.TimeInterpolated(1); got != 300 {
		t.Errorf("alpha 1: %v", got)
	}
	if got := p.TimeInterpolated(0.5); got != 200 {
		t.Errorf("alpha 0.5: %v", got)
	}
	// Clamping.
	if got := p.TimeInterpolated(-3); got != 100 {
		t.Errorf("alpha -3: %v", got)
	}
	if got := p.TimeInterpolated(7); got != 300 {
		t.Errorf("alpha 7: %v", got)
	}
}

func TestFormatPredictions(t *testing.T) {
	m := DefaultCostModel()
	preds := []*Prediction{
		{Procs: 1, TimeInfiniteBW: 2e9, TimeBusBound: 2e9},
		{Procs: 2, TimeInfiniteBW: 1e9, TimeBusBound: 1.5e9},
	}
	out := FormatPredictions("scaling", preds, m)
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "2.00") {
		t.Fatalf("bad table:\n%s", out)
	}
	if FormatPredictions("empty", nil, m) == "" {
		t.Fatal("empty table should still have a header")
	}
}
