package smp

import (
	"runtime"
	"sync"

	"repro/internal/cachesim"
	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ShardOptions configures SimulateShards.
type ShardOptions struct {
	// Parallelism bounds the worker pool: n > 1 uses n workers, 0 or 1 runs
	// sequentially, negative uses GOMAXPROCS.
	Parallelism int
	// Obs receives per-shard "cachesim.*" counter flushes. Counters are
	// atomic, so totals are independent of Parallelism.
	Obs *obs.Metrics
}

// SimulateShards is Simulate without the symmetry shortcut: it simulates
// each of the P processors' private caches explicitly, one exact
// stack-distance simulation per processor, distributed over a bounded
// worker pool. The per-processor subproblem trace is compiled once and
// shared — trace.Program carries no per-run mutable state, so concurrent
// RunBlocks walks are safe — and each shard feeds its own StackSim through
// the batched pipeline.
//
// The combined prediction takes PerProcMisses as the MAX over processors
// (the straggler bounds the infinite-bandwidth time) and TotalMisses as the
// SUM (the bus serializes all misses). For an evenly split symmetric
// partition every shard is identical, so the result equals Simulate's; the
// explicit form exists to exercise real sharded simulation and to extend to
// asymmetric partitions.
func SimulateShards(nest *loopir.Nest, env expr.Env, cfg Config, opt ShardOptions) (*Prediction, error) {
	penv, err := perProcEnv(env, cfg)
	if err != nil {
		return nil, err
	}
	p, err := trace.Compile(nest, penv)
	if err != nil {
		return nil, err
	}
	flops, err := Flops(nest).Eval(penv)
	if err != nil {
		return nil, err
	}

	procs := int(cfg.Procs)
	missesPer := make([]int64, procs)
	errs := make([]error, procs)
	simulateShard := func(i int) {
		sim := cachesim.NewStackSim(p.Size, len(p.Sites), []int64{cfg.CacheElems})
		p.RunBlocks(trace.DefaultBlockSize, sim.AccessBlock)
		res := sim.Results()
		sim.FlushMetrics(opt.Obs)
		missesPer[i], errs[i] = res.MissesFor(cfg.CacheElems)
	}

	workers := opt.Parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		workers = 1
	}
	if workers > procs {
		workers = procs
	}
	if workers <= 1 {
		for i := 0; i < procs; i++ {
			simulateShard(i)
		}
	} else {
		var next int
		var nextMu sync.Mutex
		take := func() int {
			nextMu.Lock()
			i := next
			next++
			nextMu.Unlock()
			return i
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := take()
					if i >= procs {
						return
					}
					simulateShard(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var maxM, sumM int64
	for _, m := range missesPer {
		sumM += m
		if m > maxM {
			maxM = m
		}
	}
	m := cfg.Model
	compute := float64(flops) * m.FlopCost
	return &Prediction{
		Procs:          cfg.Procs,
		PerProcMisses:  maxM,
		TotalMisses:    sumM,
		PerProcFlops:   flops,
		TimeInfiniteBW: compute + float64(maxM)*m.MissPenalty,
		TimeBusBound:   compute + float64(sumM)*m.MissPenalty,
	}, nil
}
