package smp

import (
	"reflect"
	"testing"

	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/obs"
)

// TestSimulateShardsMatchesSimulate pins the explicit per-processor sharded
// simulation to the symmetry-shortcut Simulate on an even split, at several
// pool widths.
func TestSimulateShardsMatchesSimulate(t *testing.T) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{
		"NI": 16, "NJ": 16, "NM": 16, "NN": 16,
		"TI": 8, "TJ": 8, "TM": 8, "TN": 8,
	}
	cfg := Config{Procs: 4, SplitSymbol: "NN", CacheElems: 128, Model: DefaultCostModel()}
	want, err := Simulate(nest, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.TotalMisses != want.PerProcMisses*cfg.Procs {
		t.Fatalf("Simulate symmetry broken: total %d, per-proc %d", want.TotalMisses, want.PerProcMisses)
	}
	for _, j := range []int{1, 2, 8, -1} {
		got, err := SimulateShards(nest, env, cfg, ShardOptions{Parallelism: j})
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("j=%d: sharded prediction %+v != %+v", j, got, want)
		}
	}
}

// TestSimulateShardsObsAggregation checks that the per-shard counter
// flushes aggregate to exactly P times one shard's counts, independent of
// pool width.
func TestSimulateShardsObsAggregation(t *testing.T) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{
		"NI": 8, "NJ": 8, "NM": 8, "NN": 8,
		"TI": 4, "TJ": 4, "TM": 4, "TN": 4,
	}
	cfg := Config{Procs: 4, SplitSymbol: "NN", CacheElems: 64, Model: DefaultCostModel()}
	counters := func(j int) map[string]int64 {
		m := obs.New()
		if _, err := SimulateShards(nest, env, cfg, ShardOptions{Parallelism: j, Obs: m}); err != nil {
			t.Fatal(err)
		}
		return m.Counters()
	}
	seq := counters(1)
	if seq["cachesim.accesses"] == 0 {
		t.Fatalf("no accesses flushed: %v", seq)
	}
	par := counters(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("counters vary with pool width:\nj=1 %v\nj=8 %v", seq, par)
	}
}

// TestSimulateShardsUnevenSplit confirms the divisibility error surfaces.
func TestSimulateShardsUnevenSplit(t *testing.T) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{
		"NI": 8, "NJ": 8, "NM": 8, "NN": 8,
		"TI": 4, "TJ": 4, "TM": 4, "TN": 4,
	}
	cfg := Config{Procs: 3, SplitSymbol: "NN", CacheElems: 64, Model: DefaultCostModel()}
	if _, err := SimulateShards(nest, env, cfg, ShardOptions{}); err == nil {
		t.Fatal("expected divisibility error for P=3, NN=8")
	}
}
