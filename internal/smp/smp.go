// Package smp implements §7 of the paper: optimizing the parallel execution
// of the TCE's imperfectly nested loops on shared-memory multiprocessors.
//
// The loops enclosing the imperfect nests are synchronization-free parallel
// loops; partitioning one of them across P processors reduces each
// processor's work to the same sequential problem with a 1/P-scaled bound
// (Fig. 9), so tile-size optimization reduces to the sequential problem on
// the per-processor subset. Memory cost lies between two limit models:
//
//   - bus-bandwidth-limited: processors serialize on the memory bus, so the
//     memory cost is proportional to the SUM of all processors' misses;
//   - infinite-bandwidth: processors access memory independently, so the
//     memory cost is proportional to the MAX of per-processor misses.
//
// The package predicts parallel execution time under both models from the
// analytical cache model (or, optionally, from exact per-processor
// simulation) and also provides a real goroutine-parallel executor for the
// two-index transform.
package smp

import (
	"fmt"
	"sync"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/trace"
)

// CostModel converts flop and miss counts into time. Units are arbitrary
// but consistent (think cycles); Seconds() divides by Frequency.
type CostModel struct {
	FlopCost    float64 // cost units per floating-point operation
	MissPenalty float64 // cost units per cache miss
	Frequency   float64 // cost units per second, for Seconds()
}

// DefaultCostModel approximates a 2005-era SMP node: 1 cycle per flop,
// 150 cycles per miss to shared memory, 1 GHz.
func DefaultCostModel() CostModel {
	return CostModel{FlopCost: 1, MissPenalty: 150, Frequency: 1e9}
}

// Config describes a parallel run to predict.
type Config struct {
	// Procs is the number of processors P.
	Procs int64
	// SplitSymbol is the loop-bound symbol partitioned across processors
	// (e.g. "NN" for the two-index transform: each processor owns a
	// column slice of B). It must divide evenly by Procs in the env.
	SplitSymbol string
	// CacheElems is the per-processor cache capacity in elements.
	CacheElems int64
	Model      CostModel
}

// Prediction is the outcome of an analytical SMP prediction.
type Prediction struct {
	Procs          int64
	PerProcMisses  int64
	TotalMisses    int64
	PerProcFlops   int64
	TimeInfiniteBW float64 // cost units under the infinite-bandwidth model
	TimeBusBound   float64 // cost units under the bus-limited model
}

// SecondsInfinite returns the infinite-bandwidth time in seconds.
func (p Prediction) SecondsInfinite(m CostModel) float64 { return p.TimeInfiniteBW / m.Frequency }

// SecondsBus returns the bus-limited time in seconds.
func (p Prediction) SecondsBus(m CostModel) float64 { return p.TimeBusBound / m.Frequency }

// TimeInterpolated blends the two limit models: alpha = 0 is the
// infinite-bandwidth limit, alpha = 1 the bus-limited one. §7 observes the
// real machine lies between the limits; a calibrated alpha captures a
// specific machine's effective memory parallelism.
func (p Prediction) TimeInterpolated(alpha float64) float64 {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	return p.TimeInfiniteBW + alpha*(p.TimeBusBound-p.TimeInfiniteBW)
}

// Flops returns the symbolic total floating-point operation count of a nest
// (statement Flops × iteration counts).
func Flops(nest *loopir.Nest) *expr.Expr {
	total := expr.Zero()
	for _, s := range nest.Stmts() {
		if s.Flops == 0 {
			continue
		}
		iters := expr.Const(int64(s.Flops))
		for _, l := range nest.Enclosing(s) {
			iters = expr.Mul(iters, l.Trip)
		}
		total = expr.Add(total, iters)
	}
	return total
}

// perProcEnv scales the split bound by 1/P.
func perProcEnv(env expr.Env, cfg Config) (expr.Env, error) {
	n, ok := env[cfg.SplitSymbol]
	if !ok {
		return nil, fmt.Errorf("smp: env missing split symbol %s", cfg.SplitSymbol)
	}
	if cfg.Procs <= 0 || n%cfg.Procs != 0 {
		return nil, fmt.Errorf("smp: %d processors do not divide %s=%d", cfg.Procs, cfg.SplitSymbol, n)
	}
	out := expr.Env{}
	for k, v := range env {
		out[k] = v
	}
	out[cfg.SplitSymbol] = n / cfg.Procs
	return out, nil
}

// Predict computes the parallel time prediction from the analytical model:
// each processor executes the sequential subproblem with the split bound
// scaled by 1/P, and the two limit cost models combine the per-processor
// miss counts. Evaluation goes through a frame over the analysis symbol
// table; the Env parameter is the compatibility surface.
func Predict(a *core.Analysis, env expr.Env, cfg Config) (*Prediction, error) {
	penv, err := perProcEnv(env, cfg)
	if err != nil {
		return nil, err
	}
	f := a.SymTab().FrameOf(penv)
	return predictFrame(a, f, expr.Compile(Flops(a.Nest), a.SymTab()), cfg)
}

// predictFrame runs one prediction against an already-bound frame (the split
// bound already scaled by 1/P).
func predictFrame(a *core.Analysis, f *expr.Frame, flopsProg *expr.Program, cfg Config) (*Prediction, error) {
	misses, err := a.PredictTotalFrame(f, cfg.CacheElems)
	if err != nil {
		return nil, err
	}
	flops, err := flopsProg.Eval(f)
	if err != nil {
		return nil, err
	}
	return mkPrediction(cfg, misses, flops), nil
}

// Simulate computes the same prediction with exact per-processor misses from
// the trace simulator instead of the analytical model. By symmetry every
// processor's subproblem is identical up to translation, so one simulation
// suffices.
func Simulate(nest *loopir.Nest, env expr.Env, cfg Config) (*Prediction, error) {
	penv, err := perProcEnv(env, cfg)
	if err != nil {
		return nil, err
	}
	p, err := trace.Compile(nest, penv)
	if err != nil {
		return nil, err
	}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), []int64{cfg.CacheElems})
	p.RunBlocks(trace.DefaultBlockSize, sim.AccessBlock)
	res := sim.Results()
	misses, err := res.MissesFor(cfg.CacheElems)
	if err != nil {
		return nil, err
	}
	flops, err := Flops(nest).Eval(penv)
	if err != nil {
		return nil, err
	}
	return mkPrediction(cfg, misses, flops), nil
}

func mkPrediction(cfg Config, perProcMisses, perProcFlops int64) *Prediction {
	m := cfg.Model
	compute := float64(perProcFlops) * m.FlopCost
	total := perProcMisses * cfg.Procs
	return &Prediction{
		Procs:          cfg.Procs,
		PerProcMisses:  perProcMisses,
		TotalMisses:    total,
		PerProcFlops:   perProcFlops,
		TimeInfiniteBW: compute + float64(perProcMisses)*m.MissPenalty,
		TimeBusBound:   compute + float64(total)*m.MissPenalty,
	}
}

// TileChoice names a tile assignment for sweeps (Figures 10 and 11).
type TileChoice struct {
	Label string
	Tiles map[string]int64
}

// SweepPoint is one (tiles, P) cell of a Figure 10/11 sweep.
type SweepPoint struct {
	Choice TileChoice
	Pred   Prediction
}

// Sweep evaluates every tile choice at every processor count, reproducing
// the structure of the paper's Figures 10 and 11. The flop expression is
// compiled once and a single frame is rebound per cell — the sweep used to
// rebuild an Env map and re-walk the expression trees for every (tiles, P)
// pair.
func Sweep(a *core.Analysis, baseEnv expr.Env, cfg Config, procs []int64, choices []TileChoice) ([]SweepPoint, error) {
	tab := a.SymTab()
	flopsProg := expr.Compile(Flops(a.Nest), tab)
	f := tab.NewFrame()
	var out []SweepPoint
	for _, ch := range choices {
		// Reset so no tile binding from the previous choice leaks into a
		// choice that does not set that dimension.
		f.Reset()
		f.Bind(baseEnv)
		for k, v := range ch.Tiles {
			f.SetName(k, v)
		}
		// The split bound comes from the choice's tiles if set there, else
		// the base environment — the same resolution the Env-merging path
		// performed.
		n, ok := ch.Tiles[cfg.SplitSymbol]
		if !ok {
			n, ok = baseEnv[cfg.SplitSymbol]
		}
		if !ok {
			return nil, fmt.Errorf("smp: env missing split symbol %s", cfg.SplitSymbol)
		}
		for _, p := range procs {
			c := cfg
			c.Procs = p
			if p <= 0 || n%p != 0 {
				return nil, fmt.Errorf("smp: %d processors do not divide %s=%d", p, cfg.SplitSymbol, n)
			}
			f.SetName(cfg.SplitSymbol, n/p)
			pred, err := predictFrame(a, f, flopsProg, c)
			if err != nil {
				return nil, err
			}
			out = append(out, SweepPoint{Choice: ch, Pred: *pred})
		}
		f.SetName(cfg.SplitSymbol, n)
	}
	return out, nil
}

// RunParallelMatmul executes the native tiled matrix multiplication with
// the i range (rows of C and A) partitioned across procs goroutines — the
// one-dimensional partitioning of the paper's Figs. 8 and 9. Each goroutine
// writes a disjoint row block of C, so no synchronization is needed beyond
// the final join.
func RunParallelMatmul(a, b, c *kernels.Matrix, ti, tj, tk, procs int) error {
	if procs <= 0 {
		return fmt.Errorf("smp: non-positive processor count %d", procs)
	}
	rows := a.Rows
	if rows%(ti*procs) != 0 {
		return fmt.Errorf("smp: %d processors do not evenly divide %d row tiles", procs, rows/ti)
	}
	chunk := rows / procs
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			lo := p * chunk
			aSlice := &kernels.Matrix{Rows: chunk, Cols: a.Cols, Data: a.Data[lo*a.Cols : (lo+chunk)*a.Cols]}
			cSlice := &kernels.Matrix{Rows: chunk, Cols: c.Cols, Data: c.Data[lo*c.Cols : (lo+chunk)*c.Cols]}
			errs[p] = kernels.MatmulTiled(aSlice, b, cSlice, ti, tj, tk)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunParallelTwoIndex executes the native tiled two-index transform with the
// n range partitioned across procs goroutines — the real shared-memory
// execution whose wall-clock time the caller can measure. Each goroutine
// owns a disjoint column slice of B, so no synchronization is needed beyond
// the final join.
func RunParallelTwoIndex(a, c1, c2, b *kernels.Matrix, ti, tj, tm, tn, procs int) error {
	nn := c2.Rows
	if procs <= 0 {
		return fmt.Errorf("smp: non-positive processor count %d", procs)
	}
	tilesPerProc := nn / tn
	if tilesPerProc%procs != 0 {
		return fmt.Errorf("smp: %d processors do not evenly divide %d n-tiles", procs, tilesPerProc)
	}
	chunk := nn / procs
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = kernels.TwoIndexTiled(a, c1, c2, b, ti, tj, tm, tn, p*chunk, (p+1)*chunk)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
