package smp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/kernels"
)

func analyzedTwoIndex(t *testing.T) *core.Analysis {
	t.Helper()
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFlops(t *testing.T) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	env, err := kernels.TwoIndexEnv(16, 4, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Flops(nest).Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	// S7: 2·NI·NJ·NN, S9: 2·NI·NM·NN.
	want := int64(2*16*16*16 + 2*16*16*16)
	if got != want {
		t.Fatalf("flops %d want %d", got, want)
	}
}

func TestPredictScaling(t *testing.T) {
	a := analyzedTwoIndex(t)
	env, err := kernels.TwoIndexEnv(64, 16, 16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{SplitSymbol: "NN", CacheElems: 512, Model: DefaultCostModel()}
	var prev *Prediction
	for _, p := range []int64{1, 2, 4} {
		cfg.Procs = p
		pred, err := Predict(a, env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if pred.PerProcFlops*p != 2*2*64*64*64 {
			t.Errorf("P=%d per-proc flops %d", p, pred.PerProcFlops)
		}
		if prev != nil {
			// More processors must not increase per-processor time under
			// the infinite-bandwidth model.
			if pred.TimeInfiniteBW > prev.TimeInfiniteBW {
				t.Errorf("P=%d infinite-BW time %f > P=%d time %f",
					p, pred.TimeInfiniteBW, prev.Procs, prev.TimeInfiniteBW)
			}
		}
		if pred.TimeBusBound < pred.TimeInfiniteBW {
			t.Errorf("bus-bound time below infinite-BW time at P=%d", p)
		}
		prev = pred
	}
}

func TestPredictRejectsBadSplit(t *testing.T) {
	a := analyzedTwoIndex(t)
	env, err := kernels.TwoIndexEnv(64, 16, 16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Procs: 3, SplitSymbol: "NN", CacheElems: 512, Model: DefaultCostModel()}
	if _, err := Predict(a, env, cfg); err == nil {
		t.Fatal("3 procs should not divide NN=64 evenly with tiles")
	}
	cfg = Config{Procs: 2, SplitSymbol: "NOPE", CacheElems: 512, Model: DefaultCostModel()}
	if _, err := Predict(a, env, cfg); err == nil {
		t.Fatal("unknown split symbol accepted")
	}
}

// TestSimulateMatchesPredictShape: simulated per-processor misses and the
// analytical prediction must agree within the model's tolerance.
func TestSimulateMatchesPredict(t *testing.T) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env, err := kernels.TwoIndexEnv(32, 8, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Procs: 2, SplitSymbol: "NN", CacheElems: 256, Model: DefaultCostModel()}
	pred, err := Predict(a, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(nest, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diff := pred.PerProcMisses - sim.PerProcMisses
	if diff < 0 {
		diff = -diff
	}
	tol := sim.PerProcMisses/5 + 4*32*32
	if diff > tol {
		t.Errorf("predicted per-proc misses %d vs simulated %d (tol %d)",
			pred.PerProcMisses, sim.PerProcMisses, tol)
	}
}

func TestSweep(t *testing.T) {
	a := analyzedTwoIndex(t)
	base := expr.Env{"NI": 64, "NJ": 64, "NM": 64, "NN": 64}
	cfg := Config{SplitSymbol: "NN", CacheElems: 512, Model: DefaultCostModel()}
	choices := []TileChoice{
		{Label: "equi-16", Tiles: map[string]int64{"TI": 16, "TJ": 16, "TM": 16, "TN": 16}},
		{Label: "equi-8", Tiles: map[string]int64{"TI": 8, "TJ": 8, "TM": 8, "TN": 8}},
	}
	points, err := Sweep(a, base, cfg, []int64{1, 2, 4}, choices)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d sweep points want 6", len(points))
	}
	for _, pt := range points {
		if pt.Pred.TimeInfiniteBW <= 0 {
			t.Errorf("non-positive time for %s P=%d", pt.Choice.Label, pt.Pred.Procs)
		}
	}
}

func TestRunParallelTwoIndexCorrect(t *testing.T) {
	const n = 32
	a, c1, c2 := kernels.NewMatrix(n, n), kernels.NewMatrix(n, n), kernels.NewMatrix(n, n)
	a.FillSequential(0.1)
	c1.FillSequential(0.2)
	c2.FillSequential(0.3)
	want, err := kernels.TwoIndexFused(a, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 2, 4} {
		b := kernels.NewMatrix(n, n)
		if err := RunParallelTwoIndex(a, c1, c2, b, 8, 8, 8, 8, procs); err != nil {
			t.Fatal(err)
		}
		if d := kernels.MaxAbsDiff(want, b); d > 1e-6 {
			t.Errorf("procs=%d deviates by %g", procs, d)
		}
	}
	b := kernels.NewMatrix(n, n)
	if err := RunParallelTwoIndex(a, c1, c2, b, 8, 8, 8, 8, 3); err == nil {
		t.Error("3 procs should not divide 4 n-tiles")
	}
}

func TestCostModelSeconds(t *testing.T) {
	m := DefaultCostModel()
	p := Prediction{TimeInfiniteBW: 2e9, TimeBusBound: 4e9}
	if got := p.SecondsInfinite(m); got != 2.0 {
		t.Errorf("SecondsInfinite = %v", got)
	}
	if got := p.SecondsBus(m); got != 4.0 {
		t.Errorf("SecondsBus = %v", got)
	}
}
