package tce

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/loopir"
)

// UnfusedTwoIndex generates the two-index transform B(m,n) = Σ_ij C1·C2·A
// in its unfused form: OpMin's binary step sequence lowered by GenLoopNest
// to separate init and accumulation nests per step (the paper's Fig. 1(a)
// shape). It is the canonical "structure left on the table" input of the
// joint transformation search — fusing its sibling nests (loopir.FuseLegal)
// recovers the Fig. 1(c) locality that the hand-fused FusedTwoIndex builds
// directly.
func UnfusedTwoIndex(r IndexRanges) (*loopir.Nest, error) {
	c, ranges := TwoIndexTransform()
	if r == nil {
		r = ranges
	}
	tree, err := OpMin(c, r, expr.Env{"N": 64, "V": 32})
	if err != nil {
		return nil, err
	}
	return GenLoopNest("two-index-unfused", tree.Sequence(), r)
}

// GenLoopNest lowers a pairwise-contraction sequence to a loopir program:
// for each step, an initialization nest over the output's indices followed
// by an accumulation nest over output + summation indices (summation
// innermost). The overall program is imperfectly nested and lies in the
// class the cache model analyzes (every subscript is one loop index).
//
// Loop index names are the tensor index labels; steps sharing labels share
// names (their ranges are identical), which the IR permits for sibling
// nests.
func GenLoopNest(name string, steps []BinaryStep, r IndexRanges) (*loopir.Nest, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("tce: empty step sequence")
	}
	arrays := map[string]*loopir.Array{}
	declare := func(t Tensor) error {
		if len(t.Indices) == 0 {
			return fmt.Errorf("tce: scalar tensor %s needs the fused generator", t.Name)
		}
		dims := make([]*expr.Expr, len(t.Indices))
		for i, ix := range t.Indices {
			rng, ok := r[ix]
			if !ok {
				return fmt.Errorf("tce: index %s of %s has no range", ix, t)
			}
			dims[i] = rng
		}
		if prev, ok := arrays[t.Name]; ok {
			if len(prev.Dims) != len(dims) {
				return fmt.Errorf("tce: tensor %s redeclared with different rank", t.Name)
			}
			return nil
		}
		arrays[t.Name] = &loopir.Array{Name: t.Name, Dims: dims}
		return nil
	}

	var root []loopir.Node
	stmtNo := 0
	for _, st := range steps {
		if st.In1.Name == st.In2.Name {
			return nil, fmt.Errorf("tce: step %s references %s twice (outside the model class)", st.Out, st.In1.Name)
		}
		for _, t := range []Tensor{st.Out, st.In1, st.In2} {
			if err := declare(t); err != nil {
				return nil, err
			}
		}
		ref := func(t Tensor, mode loopir.AccessMode) loopir.Ref {
			subs := make([]loopir.Subscript, len(t.Indices))
			for i, ix := range t.Indices {
				subs[i] = loopir.Idx(ix)
			}
			return loopir.Ref{Array: t.Name, Mode: mode, Subs: subs}
		}
		nestLoops := func(indices []string, inner loopir.Node) loopir.Node {
			node := inner
			for i := len(indices) - 1; i >= 0; i-- {
				node = &loopir.Loop{Index: indices[i], Trip: r[indices[i]], Body: []loopir.Node{node}}
			}
			return node
		}
		stmtNo++
		init := &loopir.Stmt{
			Label: fmt.Sprintf("S%d", stmtNo),
			Refs:  []loopir.Ref{ref(st.Out, loopir.Write)},
		}
		root = append(root, nestLoops(st.Out.Indices, init))
		stmtNo++
		acc := &loopir.Stmt{
			Label: fmt.Sprintf("S%d", stmtNo),
			Flops: 2,
			Refs: []loopir.Ref{
				ref(st.In1, loopir.Read),
				ref(st.In2, loopir.Read),
				ref(st.Out, loopir.Update),
			},
		}
		all := append(append([]string(nil), st.Out.Indices...), st.SumIndices...)
		root = append(root, nestLoops(all, acc))
	}
	var decls []*loopir.Array
	for _, a := range arrays {
		decls = append(decls, a)
	}
	return loopir.NewNest(name, decls, root)
}
