package tce

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/trace"
)

// TestFourIndexPipeline drives the full TCE pipeline on the four-index
// transform of §2: operation minimization, lowering to an imperfectly
// nested loop program (8 statements: 4 inits + 4 accumulations over
// 5-dimensional spaces), cache analysis, and validation against the exact
// simulator at a reduced size.
func TestFourIndexPipeline(t *testing.T) {
	c, r := FourIndexTransform()
	tree, err := OpMin(c, r, expr.Env{"N": 64, "V": 32})
	if err != nil {
		t.Fatal(err)
	}
	steps := tree.Sequence()
	if len(steps) != 4 {
		t.Fatalf("%d steps", len(steps))
	}
	nest, err := GenLoopNest("four-index", steps, r)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(nest.Stmts()); got != 8 {
		t.Fatalf("%d statements, want 8", got)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{"N": 6, "V": 4}
	p, err := trace.Compile(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckBounds(); err != nil {
		t.Fatal(err)
	}
	watches := []int64{16, 128, 1024, 1 << 30}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.Run(sim.Access)
	res := sim.Results()
	total, _ := p.Length()
	for i, cap := range watches {
		pred, err := a.PredictTotal(env, cap)
		if err != nil {
			t.Fatal(err)
		}
		diff := pred - res.Misses[i]
		if diff < 0 {
			diff = -diff
		}
		// The 5-deep nests have more boundary surface relative to volume
		// at this tiny size; allow a sub-dominant slice per site.
		tol := total/6 + 200
		if diff > tol {
			t.Errorf("cap %d: predicted %d vs simulated %d (tol %d)", cap, pred, res.Misses[i], tol)
		}
	}
	// Compulsory misses must be exact.
	predInf, _ := a.PredictTotal(env, 1<<40)
	if predInf != res.Distinct {
		t.Errorf("compulsory %d vs distinct %d", predInf, res.Distinct)
	}
}

// TestFourIndexIntermediateShapes: the optimal chain's intermediates drop
// one AO index and gain one MO index at each step.
func TestFourIndexIntermediateShapes(t *testing.T) {
	c, r := FourIndexTransform()
	tree, err := OpMin(c, r, expr.Env{"N": 64, "V": 32})
	if err != nil {
		t.Fatal(err)
	}
	steps := tree.Sequence()
	for i, st := range steps {
		if len(st.Out.Indices) != 4 {
			t.Errorf("step %d output %s is not rank-4", i, st.Out)
		}
		if len(st.SumIndices) != 1 {
			t.Errorf("step %d contracts %v, want exactly one index", i, st.SumIndices)
		}
	}
	// Final output must be the MO-basis tensor B(a,b,c,d).
	last := steps[len(steps)-1]
	if last.Out.Name != "B" {
		t.Errorf("final output %s", last.Out)
	}
}
