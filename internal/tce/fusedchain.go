package tce

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/loopir"
)

// TransformStep is a normalized step of an index-transform chain: the
// carried tensor (the seed, or the previous step's output) is contracted
// over Sum with a rank-2 matrix, introducing index New:
//
//	Out = Σ_{Sum} Matrix(New, Sum) · Carried
type TransformStep struct {
	Out     Tensor
	Carried Tensor
	Matrix  Tensor
	Sum     string
	New     string
}

// NormalizeChain validates that the binary steps form an index-transform
// chain (each step contracts exactly one index of the running intermediate
// with a rank-2 matrix) and returns the normalized steps. Both the
// two-index and four-index transforms of the paper have this shape after
// operation minimization. When the first step's operands are both rank-2
// (the two-index transform), either can serve as the seed; the assignment
// that yields a valid chain (no "new" index is contracted later) is chosen.
func NormalizeChain(steps []BinaryStep) ([]TransformStep, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("tce: empty chain")
	}
	first, err := normalizeWith(steps, false)
	if err == nil {
		return first, nil
	}
	second, err2 := normalizeWith(steps, true)
	if err2 == nil {
		return second, nil
	}
	return nil, err
}

func normalizeWith(steps []BinaryStep, swapFirst bool) ([]TransformStep, error) {
	var out []TransformStep
	prevOut := ""
	for k, st := range steps {
		if len(st.SumIndices) != 1 {
			return nil, fmt.Errorf("tce: step %d contracts %v, transform chains contract one index per step",
				k, st.SumIndices)
		}
		sum := st.SumIndices[0]
		isMatrix := func(t Tensor) bool {
			return len(t.Indices) == 2 && (t.Indices[0] == sum || t.Indices[1] == sum)
		}
		carried, matrix := st.In1, st.In2
		if k > 0 {
			switch prevOut {
			case st.In2.Name:
				carried, matrix = st.In2, st.In1
			case st.In1.Name:
				// already assigned
			default:
				return nil, fmt.Errorf("tce: step %d does not consume the previous intermediate %s", k, prevOut)
			}
		} else {
			// Default: the higher-rank operand is the seed.
			if len(st.In1.Indices) < len(st.In2.Indices) {
				carried, matrix = st.In2, st.In1
			}
			if swapFirst {
				carried, matrix = matrix, carried
			}
		}
		if !isMatrix(matrix) {
			return nil, fmt.Errorf("tce: step %d operand %s is not a transform matrix over %s", k, matrix, sum)
		}
		newIdx := matrix.Indices[0]
		if newIdx == sum {
			newIdx = matrix.Indices[1]
		}
		hasSum := false
		for _, ix := range carried.Indices {
			if ix == sum {
				hasSum = true
			}
		}
		if !hasSum {
			return nil, fmt.Errorf("tce: step %d sum index %s absent from carried tensor %s", k, sum, carried)
		}
		out = append(out, TransformStep{
			Out: st.Out, Carried: carried, Matrix: matrix, Sum: sum, New: newIdx,
		})
		prevOut = st.Out.Name
	}
	// Chain validity: no step's new index may be contracted later (it must
	// survive into the final output), otherwise the fused loop structure
	// would nest a loop inside itself.
	contracted := map[string]bool{}
	for _, c := range out {
		contracted[c.Sum] = true
	}
	for k, c := range out {
		if contracted[c.New] {
			return nil, fmt.Errorf("tce: step %d introduces %s which a later step contracts", k, c.New)
		}
	}
	return out, nil
}

// FusedChainMemory returns the symbolic total buffer footprint of the fused
// chain: intermediate k keeps only the new indices of steps 2..k (the
// outermost new index and the surviving seed indices are bound by enclosing
// loops). The final output is excluded (it must be materialized anyway).
func FusedChainMemory(chain []TransformStep, r IndexRanges) *expr.Expr {
	total := expr.Zero()
	for k := 0; k < len(chain)-1; k++ {
		size := expr.One()
		for j := 1; j <= k; j++ {
			size = expr.Mul(size, r[chain[j].New])
		}
		total = expr.Add(total, size)
	}
	return total
}

// GenFusedTransformChain generates the fully fused loop program for an
// index-transform chain — the generalization of Fig. 1(c) that, for the
// four-index transform, produces the classic TCE structure
//
//	for a { B[a,*,*,*] = 0
//	  for s { T3[*,*] = 0        // only inside: see below
//	    for r { T2[*] = 0
//	      for q { T1 = 0
//	        for p { T1 += C1[a,p]·A[p,q,r,s] }
//	        for b { T2[b] += C2[b,q]·T1 } }
//	      for b,c { T3[b,c] += C3[c,r]·T2[b] } }
//	    for b,c,d { B[a,b,c,d] += C4[d,s]·T3[b,c] } } }
//
// reducing intermediate storage from three O(N⁴) arrays to 1 + V + V²
// elements. The generated program is in the analyzable class.
func GenFusedTransformChain(name string, steps []BinaryStep, r IndexRanges) (*loopir.Nest, error) {
	chain, err := NormalizeChain(steps)
	if err != nil {
		return nil, err
	}
	K := len(chain)
	seed := chain[0].Carried

	// Survivor indices of the seed: not contracted by any step.
	contracted := map[string]bool{}
	for _, c := range chain {
		contracted[c.Sum] = true
	}
	var survivors []string
	for _, ix := range seed.Indices {
		if !contracted[ix] {
			survivors = append(survivors, ix)
		}
	}

	// Arrays: seed, matrices, buffers. Buffer k (0-based step k) holds
	// dims new_2..new_{k+1} (chain[1..k].New); the last "buffer" is the
	// real output.
	arrays := map[string]*loopir.Array{}
	declare := func(t Tensor) error {
		dims := make([]*expr.Expr, len(t.Indices))
		for i, ix := range t.Indices {
			rng, ok := r[ix]
			if !ok {
				return fmt.Errorf("tce: no range for index %s", ix)
			}
			dims[i] = rng
		}
		if len(dims) == 0 {
			dims = []*expr.Expr{expr.One()}
		}
		if _, dup := arrays[t.Name]; !dup {
			arrays[t.Name] = &loopir.Array{Name: t.Name, Dims: dims}
		}
		return nil
	}
	if err := declare(seed); err != nil {
		return nil, err
	}
	for _, c := range chain {
		if err := declare(c.Matrix); err != nil {
			return nil, err
		}
	}
	// Buffer tensors: bufDims[k] = indices of chain[1..k].New.
	bufDims := make([][]string, K)
	bufName := make([]string, K)
	for k := 0; k < K; k++ {
		for j := 1; j <= k; j++ {
			bufDims[k] = append(bufDims[k], chain[j].New)
		}
		if k == K-1 {
			bufName[k] = chain[k].Out.Name
			// The real output keeps its declared index order.
			if err := declare(chain[k].Out); err != nil {
				return nil, err
			}
		} else {
			bufName[k] = chain[k].Out.Name
			if err := declare(Tensor{Name: bufName[k], Indices: bufDims[k]}); err != nil {
				return nil, err
			}
		}
	}

	subs := func(t Tensor) []loopir.Subscript {
		if len(t.Indices) == 0 {
			return []loopir.Subscript{loopir.ConstIdx()}
		}
		out := make([]loopir.Subscript, len(t.Indices))
		for i, ix := range t.Indices {
			out[i] = loopir.Idx(ix)
		}
		return out
	}
	bufTensor := func(k int) Tensor {
		if k == K-1 {
			return chain[k].Out
		}
		return Tensor{Name: bufName[k], Indices: bufDims[k]}
	}
	nestLoops := func(indices []string, inner []loopir.Node) []loopir.Node {
		nodes := inner
		for i := len(indices) - 1; i >= 0; i-- {
			nodes = []loopir.Node{&loopir.Loop{Index: indices[i], Trip: r[indices[i]], Body: nodes}}
		}
		return nodes
	}
	stmtNo := 0
	mkStmt := func(flops int, refs ...loopir.Ref) *loopir.Stmt {
		stmtNo++
		return &loopir.Stmt{Label: fmt.Sprintf("F%d", stmtNo), Flops: flops, Refs: refs}
	}

	// block(k) emits: init buf_k; for σ_k { block(k-1) | seed-accumulate };
	// accumulate buf_k from buf_{k-1}.
	var block func(k int) []loopir.Node
	block = func(k int) []loopir.Node {
		c := chain[k]
		buf := bufTensor(k)
		init := nestLoops(bufDims[k],
			[]loopir.Node{mkStmt(0, loopir.Ref{Array: buf.Name, Mode: loopir.Write, Subs: subs(buf)})})
		var inner []loopir.Node
		if k == 0 {
			inner = []loopir.Node{mkStmt(2,
				loopir.Ref{Array: c.Matrix.Name, Mode: loopir.Read, Subs: subs(c.Matrix)},
				loopir.Ref{Array: seed.Name, Mode: loopir.Read, Subs: subs(seed)},
				loopir.Ref{Array: buf.Name, Mode: loopir.Update, Subs: subs(buf)},
			)}
		} else {
			prev := bufTensor(k - 1)
			acc := nestLoops(bufDims[k], []loopir.Node{mkStmt(2,
				loopir.Ref{Array: c.Matrix.Name, Mode: loopir.Read, Subs: subs(c.Matrix)},
				loopir.Ref{Array: prev.Name, Mode: loopir.Read, Subs: subs(prev)},
				loopir.Ref{Array: buf.Name, Mode: loopir.Update, Subs: subs(buf)},
			)})
			inner = append(block(k-1), acc...)
		}
		body := append(init,
			&loopir.Loop{Index: c.Sum, Trip: r[c.Sum], Body: inner})
		return body
	}

	outer := append([]string{chain[0].New}, survivors...)
	root := nestLoops(outer, block(K-1))
	var decls []*loopir.Array
	for _, a := range arrays {
		decls = append(decls, a)
	}
	return loopir.NewNest(name, decls, root)
}
