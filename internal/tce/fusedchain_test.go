package tce

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/trace"
)

func chainOf(t *testing.T, c Contraction, r IndexRanges, rank expr.Env) []BinaryStep {
	t.Helper()
	tree, err := OpMin(c, r, rank)
	if err != nil {
		t.Fatal(err)
	}
	return tree.Sequence()
}

func TestNormalizeChainTwoIndex(t *testing.T) {
	c, r := TwoIndexTransform()
	steps := chainOf(t, c, r, expr.Env{"N": 100, "V": 100})
	chain, err := NormalizeChain(steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 {
		t.Fatalf("%d chain steps", len(chain))
	}
	contracted := map[string]bool{chain[0].Sum: true, chain[1].Sum: true}
	for k, st := range chain {
		if contracted[st.New] {
			t.Errorf("step %d new index %s is contracted later", k, st.New)
		}
	}
}

func TestNormalizeChainFourIndex(t *testing.T) {
	c, r := FourIndexTransform()
	steps := chainOf(t, c, r, expr.Env{"N": 64, "V": 32})
	chain, err := NormalizeChain(steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 4 {
		t.Fatalf("%d chain steps", len(chain))
	}
	// Seed must be the rank-4 integral tensor.
	if chain[0].Carried.Name != "A" {
		t.Errorf("seed is %s, want A", chain[0].Carried)
	}
	for k, st := range chain {
		if st.Matrix.Name[0] != 'C' {
			t.Errorf("step %d matrix %s", k, st.Matrix)
		}
	}
}

func TestFusedChainMemoryFourIndex(t *testing.T) {
	c, r := FourIndexTransform()
	steps := chainOf(t, c, r, expr.Env{"N": 64, "V": 32})
	chain, err := NormalizeChain(steps)
	if err != nil {
		t.Fatal(err)
	}
	mem := FusedChainMemory(chain, r)
	got, err := mem.Eval(expr.Env{"N": 64, "V": 32})
	if err != nil {
		t.Fatal(err)
	}
	// Buffers: scalar + V + V² = 1 + 32 + 1024.
	if got != 1+32+1024 {
		t.Fatalf("fused memory %d want %d (expr %s)", got, 1+32+1024, mem)
	}
	// Unfused: the three intermediates hold V·N³, V²·N², V³·N elements.
	unfused := int64(32*64*64*64 + 32*32*64*64 + 32*32*32*64)
	if got*1000 > unfused {
		t.Fatalf("fusion saves less than 1000x: %d vs %d", got, unfused)
	}
}

// TestFusedTwoIndexChainComputesCorrectly: execute the generated fused
// program numerically and compare with the native reference.
func TestFusedTwoIndexChainComputesCorrectly(t *testing.T) {
	c, r := TwoIndexTransform()
	steps := chainOf(t, c, r, expr.Env{"N": 100, "V": 100})
	nest, err := GenFusedTransformChain("two-index-fused-chain", steps, r)
	if err != nil {
		t.Fatal(err)
	}
	const n, v = 12, 8
	env := expr.Env{"N": n, "V": v}
	ex, err := trace.NewExecutor(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	a := kernels.NewMatrix(n, n)
	c1 := kernels.NewMatrix(v, n)
	c2 := kernels.NewMatrix(v, n)
	a.FillSequential(0.1)
	c1.FillSequential(0.2)
	c2.FillSequential(0.3)
	for name, m := range map[string]*kernels.Matrix{"A": a, "C1": c1, "C2": c2} {
		if err := ex.SetArray(name, m.Data); err != nil {
			t.Fatal(err)
		}
	}
	ex.Run()
	got, err := ex.Array("B")
	if err != nil {
		t.Fatal(err)
	}
	want, err := kernels.TwoIndexFused(a, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		d := got[i] - want.Data[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-6 {
			t.Fatalf("B[%d] = %g want %g", i, got[i], want.Data[i])
		}
	}
}

// TestFusedFourIndexChainComputesCorrectly: the generated fused four-index
// program matches direct 8-loop evaluation at a tiny size.
func TestFusedFourIndexChainComputesCorrectly(t *testing.T) {
	c, r := FourIndexTransform()
	steps := chainOf(t, c, r, expr.Env{"N": 64, "V": 32})
	nest, err := GenFusedTransformChain("four-index-fused-chain", steps, r)
	if err != nil {
		t.Fatal(err)
	}
	const n, v = 4, 3
	env := expr.Env{"N": n, "V": v}
	ex, err := trace.NewExecutor(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(rows, cols int, scale float64) []float64 {
		out := make([]float64, rows*cols)
		for i := range out {
			out[i] = scale * float64(i%13+1)
		}
		return out
	}
	A := mk(n*n, n*n, 0.01) // rank-4 (p,q,r,s) flattened
	C1 := mk(v, n, 0.1)
	C2 := mk(v, n, 0.2)
	C3 := mk(v, n, 0.3)
	C4 := mk(v, n, 0.4)
	for name, data := range map[string][]float64{"A": A, "C1": C1, "C2": C2, "C3": C3, "C4": C4} {
		if err := ex.SetArray(name, data); err != nil {
			t.Fatal(err)
		}
	}
	ex.Run()
	got, err := ex.Array("B")
	if err != nil {
		t.Fatal(err)
	}
	// Direct O(V^4 N^4) evaluation.
	want := make([]float64, v*v*v*v)
	at4 := func(x []float64, i, j, k, l, d int) float64 {
		return x[((i*d+j)*d+k)*d+l]
	}
	for a1 := 0; a1 < v; a1++ {
		for b := 0; b < v; b++ {
			for cc := 0; cc < v; cc++ {
				for d := 0; d < v; d++ {
					var s float64
					for p := 0; p < n; p++ {
						for q := 0; q < n; q++ {
							for rr := 0; rr < n; rr++ {
								for ss := 0; ss < n; ss++ {
									s += C1[a1*n+p] * C2[b*n+q] * C3[cc*n+rr] * C4[d*n+ss] *
										at4(A, p, q, rr, ss, n)
								}
							}
						}
					}
					want[((a1*v+b)*v+cc)*v+d] = s
				}
			}
		}
	}
	for i := range got {
		d := got[i] - want[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-6*(1+want[i]) && d > 1e-6 {
			t.Fatalf("B[%d] = %g want %g", i, got[i], want[i])
		}
	}
}

// TestFusedFourIndexAnalyzable: the generated fused program is in the model
// class and its predictions track exact simulation.
func TestFusedFourIndexAnalyzable(t *testing.T) {
	c, r := FourIndexTransform()
	steps := chainOf(t, c, r, expr.Env{"N": 64, "V": 32})
	nest, err := GenFusedTransformChain("four-index-fused-chain", steps, r)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{"N": 6, "V": 4}
	p, err := trace.Compile(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckBounds(); err != nil {
		t.Fatal(err)
	}
	watches := []int64{8, 64, 512, 1 << 30}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.Run(sim.Access)
	res := sim.Results()
	total, _ := p.Length()
	for i, cap := range watches {
		pred, err := a.PredictTotal(env, cap)
		if err != nil {
			t.Fatal(err)
		}
		diff := pred - res.Misses[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > total/5+300 {
			t.Errorf("cap %d: predicted %d vs simulated %d (trace %d)", cap, pred, res.Misses[i], total)
		}
	}
	predInf, _ := a.PredictTotal(env, 1<<40)
	if predInf != res.Distinct {
		t.Errorf("compulsory %d vs distinct %d", predInf, res.Distinct)
	}
}

func TestNormalizeChainRejectsNonChain(t *testing.T) {
	// Two sum indices in one step.
	steps := []BinaryStep{{
		Out:        Tensor{Name: "O", Indices: []string{"a"}},
		In1:        Tensor{Name: "X", Indices: []string{"a", "i", "j"}},
		In2:        Tensor{Name: "Y", Indices: []string{"i", "j"}},
		SumIndices: []string{"i", "j"},
	}}
	if _, err := NormalizeChain(steps); err == nil {
		t.Fatal("multi-index contraction accepted")
	}
	// Second step not consuming the first's output.
	c, r := TwoIndexTransform()
	good := chainOf(t, c, r, expr.Env{"N": 10, "V": 10})
	bad := []BinaryStep{good[0], good[0]}
	if _, err := NormalizeChain(bad); err == nil {
		t.Fatal("broken chain accepted")
	}
}
