package tce

import (
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/trace"
)

// TestLoopFusionOnGeneratedCode drives Fig. 1 end to end mechanically:
// generate the unfused two-index program, fuse adjacent loops, and check
// that the fused program has fewer loops, computes the same result, and is
// still analyzable by the cache model with fewer misses at small caches
// (fusion moves the producer next to the consumer).
func TestLoopFusionOnGeneratedCode(t *testing.T) {
	c, r := TwoIndexTransform()
	tree, err := OpMin(c, r, expr.Env{"N": 100, "V": 100})
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := GenLoopNest("two-index-unfused", tree.Sequence(), r)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := loopir.FuseAdjacent(unfused)
	if err != nil {
		t.Fatal(err)
	}
	if fused.LoopCount() >= unfused.LoopCount() {
		t.Fatalf("fusion did not reduce loops: %d vs %d", fused.LoopCount(), unfused.LoopCount())
	}
	if len(fused.Stmts()) != len(unfused.Stmts()) {
		t.Fatalf("statements lost: %d vs %d", len(fused.Stmts()), len(unfused.Stmts()))
	}

	// Numeric equivalence via the executor.
	const n, v = 10, 6
	env := expr.Env{"N": n, "V": v}
	runOne := func(nest *loopir.Nest) []float64 {
		t.Helper()
		ex, err := trace.NewExecutor(nest, env)
		if err != nil {
			t.Fatal(err)
		}
		a := kernels.NewMatrix(n, n)
		c1 := kernels.NewMatrix(v, n)
		c2 := kernels.NewMatrix(v, n)
		a.FillSequential(0.1)
		c1.FillSequential(0.2)
		c2.FillSequential(0.3)
		for name, m := range map[string]*kernels.Matrix{"A": a, "C1": c1, "C2": c2} {
			if err := ex.SetArray(name, m.Data); err != nil {
				t.Fatal(err)
			}
		}
		ex.Run()
		out, err := ex.Array("B")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	bu := runOne(unfused)
	bf := runOne(fused)
	for i := range bu {
		d := bu[i] - bf[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-9 {
			t.Fatalf("B[%d]: unfused %g fused %g", i, bu[i], bf[i])
		}
	}

	// Both analyzable; fusion must not increase misses at a small cache
	// (the intermediate's producer-consumer distance shrinks).
	au, err := core.Analyze(unfused)
	if err != nil {
		t.Fatal(err)
	}
	af, err := core.Analyze(fused)
	if err != nil {
		t.Fatal(err)
	}
	const cache = 64
	mu, err := au.PredictTotal(env, cache)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := af.PredictTotal(env, cache)
	if err != nil {
		t.Fatal(err)
	}
	if mf > mu {
		t.Errorf("fusion increased predicted misses: %d -> %d", mu, mf)
	}
}
