package tce

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/expr"
)

// OpTree is a binarized evaluation plan for a multi-tensor contraction:
// leaves are input tensors, internal nodes are pairwise contractions
// producing intermediates.
type OpTree struct {
	Tensor Tensor  // the tensor this node produces
	Left   *OpTree // nil for leaves
	Right  *OpTree
	// StepFlops is the symbolic operation count of this node's pairwise
	// contraction (zero for leaves).
	StepFlops *expr.Expr
}

// BinaryStep is one pairwise contraction of the flattened plan.
type BinaryStep struct {
	Out, In1, In2 Tensor
	SumIndices    []string
}

// OpMin binarizes the contraction into the pairwise evaluation order with
// the minimum total operation count, using dynamic programming over input
// subsets. Costs are compared numerically under rankEnv (representative
// index-range values); the returned tree carries exact symbolic per-step
// counts. Intermediates are named T1, T2, … in evaluation order.
func OpMin(c Contraction, r IndexRanges, rankEnv expr.Env) (*OpTree, error) {
	if err := c.Validate(r); err != nil {
		return nil, err
	}
	k := len(c.Inputs)
	if k > 16 {
		return nil, fmt.Errorf("tce: %d inputs exceed the subset-DP limit", k)
	}
	// Index occurrence counts outside each subset determine intermediate
	// shapes: an index survives a subset's contraction if it appears in the
	// result or in an input outside the subset.
	inResult := map[string]bool{}
	for _, ix := range c.Result.Indices {
		inResult[ix] = true
	}
	occ := map[string]int{}
	for _, in := range c.Inputs {
		for _, ix := range in.Indices {
			occ[ix]++
		}
	}
	idxOf := func(mask int) map[string]int {
		m := map[string]int{}
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				for _, ix := range c.Inputs[i].Indices {
					m[ix]++
				}
			}
		}
		return m
	}
	liveOf := func(mask int) []string {
		inside := idxOf(mask)
		var live []string
		for ix, n := range inside {
			if inResult[ix] || occ[ix] > n {
				live = append(live, ix)
			}
		}
		sort.Strings(live)
		return live
	}
	rangeVal := func(ix string) (float64, error) {
		v, err := r[ix].Eval(rankEnv)
		if err != nil {
			return 0, err
		}
		return float64(v), nil
	}

	type entry struct {
		cost  float64
		split int // left-subset mask; 0 for leaves
	}
	full := 1<<k - 1
	dp := make([]entry, full+1)
	for m := range dp {
		dp[m].cost = math.Inf(1)
	}
	for i := 0; i < k; i++ {
		dp[1<<i] = entry{cost: 0}
	}
	// Enumerate subsets in increasing popcount order.
	masks := make([]int, 0, full)
	for m := 1; m <= full; m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(a, b int) bool {
		return bits.OnesCount(uint(masks[a])) < bits.OnesCount(uint(masks[b]))
	})
	stepCost := func(l, rm int) (float64, error) {
		// Contracting X(live(l)) with Y(live(r)): 2 flops per point of the
		// union index space.
		union := map[string]bool{}
		for _, ix := range liveOf(l) {
			union[ix] = true
		}
		for _, ix := range liveOf(rm) {
			union[ix] = true
		}
		cost := 2.0
		for ix := range union {
			v, err := rangeVal(ix)
			if err != nil {
				return 0, err
			}
			cost *= v
		}
		return cost, nil
	}
	for _, m := range masks {
		if bits.OnesCount(uint(m)) < 2 {
			continue
		}
		// Iterate proper submasks; to halve work require lowest set bit in l.
		low := m & (-m)
		for l := (m - 1) & m; l > 0; l = (l - 1) & m {
			if l&low == 0 {
				continue
			}
			rm := m ^ l
			sc, err := stepCost(l, rm)
			if err != nil {
				return nil, err
			}
			cost := dp[l].cost + dp[rm].cost + sc
			if cost < dp[m].cost {
				dp[m] = entry{cost: cost, split: l}
			}
		}
	}

	// Reconstruct the tree, naming intermediates in evaluation order.
	nextID := 0
	var build func(mask int) *OpTree
	build = func(mask int) *OpTree {
		if bits.OnesCount(uint(mask)) == 1 {
			return &OpTree{Tensor: c.Inputs[bits.TrailingZeros(uint(mask))], StepFlops: expr.Zero()}
		}
		l := dp[mask].split
		rm := mask ^ l
		left := build(l)
		right := build(rm)
		nextID++
		name := fmt.Sprintf("T%d", nextID)
		live := liveOf(mask)
		if mask == full {
			name = c.Result.Name
			live = append([]string(nil), c.Result.Indices...)
		}
		// Symbolic step flops: 2 · Π over the union of operand indices.
		union := map[string]bool{}
		for _, ix := range left.Tensor.Indices {
			union[ix] = true
		}
		for _, ix := range right.Tensor.Indices {
			union[ix] = true
		}
		flops := expr.Const(2)
		ordered := make([]string, 0, len(union))
		for ix := range union {
			ordered = append(ordered, ix)
		}
		sort.Strings(ordered)
		for _, ix := range ordered {
			flops = expr.Mul(flops, r[ix])
		}
		return &OpTree{
			Tensor:    Tensor{Name: name, Indices: live},
			Left:      left,
			Right:     right,
			StepFlops: flops,
		}
	}
	return build(full), nil
}

// TotalFlops returns the symbolic total operation count of the plan.
func (t *OpTree) TotalFlops() *expr.Expr {
	if t == nil || t.Left == nil {
		return expr.Zero()
	}
	return expr.Add(t.StepFlops, t.Left.TotalFlops(), t.Right.TotalFlops())
}

// Sequence flattens the tree into evaluation order (post-order).
func (t *OpTree) Sequence() []BinaryStep {
	var out []BinaryStep
	var walk func(n *OpTree)
	walk = func(n *OpTree) {
		if n == nil || n.Left == nil {
			return
		}
		walk(n.Left)
		walk(n.Right)
		out = append(out, BinaryStep{
			Out:        n.Tensor,
			In1:        n.Left.Tensor,
			In2:        n.Right.Tensor,
			SumIndices: sumIndicesOf(n),
		})
	}
	walk(t)
	return out
}

func sumIndicesOf(n *OpTree) []string {
	keep := map[string]bool{}
	for _, ix := range n.Tensor.Indices {
		keep[ix] = true
	}
	set := map[string]bool{}
	for _, ix := range n.Left.Tensor.Indices {
		if !keep[ix] {
			set[ix] = true
		}
	}
	for _, ix := range n.Right.Tensor.Indices {
		if !keep[ix] {
			set[ix] = true
		}
	}
	out := make([]string, 0, len(set))
	for ix := range set {
		out = append(out, ix)
	}
	sort.Strings(out)
	return out
}

// String renders the plan as nested parentheses with per-step shapes.
func (t *OpTree) String() string {
	if t.Left == nil {
		return t.Tensor.String()
	}
	return fmt.Sprintf("(%s × %s → %s)", t.Left, t.Right, t.Tensor)
}
