// Package tce implements the Tensor Contraction Engine substrate the paper's
// optimization lives in (§2): a miniature domain-specific compiler for
// tensor contraction expressions.
//
// A contraction Result = Σ_{contracted indices} Π inputs is
//
//  1. operation-minimized: the multi-tensor product is binarized into a tree
//     of pairwise contractions minimizing floating-point operations
//     (dynamic programming over input subsets, the classic reduction from
//     O(N^8) to O(N^5) for the four-index transform);
//  2. lowered to loopir: each binary contraction becomes an initialization
//     nest plus an accumulation nest, giving an imperfectly nested loop
//     program in exactly the class the cache model analyzes;
//  3. optionally fused: producer/consumer pairs sharing loops are merged so
//     the intermediate loses the fused dimensions (Fig. 1's reduction of T
//     from a matrix to a scalar).
package tce

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
)

// Tensor names a tensor and its index labels, e.g. A(i,j).
type Tensor struct {
	Name    string
	Indices []string
}

func (t Tensor) String() string {
	return t.Name + "(" + strings.Join(t.Indices, ",") + ")"
}

// Contraction is Result = Σ_{indices not in Result} Π Inputs.
type Contraction struct {
	Result Tensor
	Inputs []Tensor
}

// IndexRanges binds each index label to its symbolic range.
type IndexRanges map[string]*expr.Expr

// Validate checks that the contraction is well-formed: every result index
// appears in some input, no input repeats an index, and every index has a
// range.
func (c Contraction) Validate(r IndexRanges) error {
	if len(c.Inputs) == 0 {
		return fmt.Errorf("tce: contraction %s has no inputs", c.Result)
	}
	inInputs := map[string]int{}
	for _, in := range c.Inputs {
		seen := map[string]bool{}
		for _, ix := range in.Indices {
			if seen[ix] {
				return fmt.Errorf("tce: input %s repeats index %s", in, ix)
			}
			seen[ix] = true
			inInputs[ix]++
		}
	}
	for _, ix := range c.Result.Indices {
		if inInputs[ix] == 0 {
			return fmt.Errorf("tce: result index %s of %s appears in no input", ix, c.Result)
		}
	}
	for ix := range inInputs {
		if _, ok := r[ix]; !ok {
			return fmt.Errorf("tce: index %s has no range", ix)
		}
	}
	for _, ix := range c.Result.Indices {
		if _, ok := r[ix]; !ok {
			return fmt.Errorf("tce: index %s has no range", ix)
		}
	}
	return nil
}

// SumIndices returns the contracted (summation) indices: those appearing in
// inputs but not in the result, sorted.
func (c Contraction) SumIndices() []string {
	inResult := map[string]bool{}
	for _, ix := range c.Result.Indices {
		inResult[ix] = true
	}
	set := map[string]bool{}
	for _, in := range c.Inputs {
		for _, ix := range in.Indices {
			if !inResult[ix] {
				set[ix] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for ix := range set {
		out = append(out, ix)
	}
	sort.Strings(out)
	return out
}

// NaiveFlops returns the operation count of evaluating the contraction as a
// single nested sum over all indices: 2·(#inputs-1 multiplies + add)
// approximated as 2·#inputs per innermost iteration... the standard
// convention counts 2 flops per multiply-accumulate of the fully expanded
// product, i.e. 2·len(Inputs)·Π ranges for len>1.
func (c Contraction) NaiveFlops(r IndexRanges) *expr.Expr {
	all := map[string]bool{}
	for _, ix := range c.Result.Indices {
		all[ix] = true
	}
	for _, in := range c.Inputs {
		for _, ix := range in.Indices {
			all[ix] = true
		}
	}
	total := expr.Const(int64(2 * (len(c.Inputs) - 1)))
	if len(c.Inputs) == 1 {
		total = expr.Const(2)
	}
	for ix := range all {
		total = expr.Mul(total, r[ix])
	}
	return total
}

// TwoIndexTransform returns the running example of the paper:
// B(m,n) = Σ_{i,j} C1(m,i) · C2(n,j) · A(i,j).
func TwoIndexTransform() (Contraction, IndexRanges) {
	n := expr.Var("N")
	v := expr.Var("V")
	c := Contraction{
		Result: Tensor{Name: "B", Indices: []string{"m", "n"}},
		Inputs: []Tensor{
			{Name: "C1", Indices: []string{"m", "i"}},
			{Name: "C2", Indices: []string{"n", "j"}},
			{Name: "A", Indices: []string{"i", "j"}},
		},
	}
	r := IndexRanges{"i": n, "j": n, "m": v, "n": v}
	return c, r
}

// FourIndexTransform returns the AO→MO integral transform of §2:
// B(a,b,c,d) = Σ_{p,q,r,s} C1(a,p)·C2(b,q)·C3(c,r)·C4(d,s)·A(p,q,r,s).
func FourIndexTransform() (Contraction, IndexRanges) {
	n := expr.Var("N") // AO index range (O+V in the paper)
	v := expr.Var("V") // MO (virtual) index range
	c := Contraction{
		Result: Tensor{Name: "B", Indices: []string{"a", "b", "c", "d"}},
		Inputs: []Tensor{
			{Name: "C1", Indices: []string{"a", "p"}},
			{Name: "C2", Indices: []string{"b", "q"}},
			{Name: "C3", Indices: []string{"c", "r"}},
			{Name: "C4", Indices: []string{"d", "s"}},
			{Name: "A", Indices: []string{"p", "q", "r", "s"}},
		},
	}
	r := IndexRanges{
		"p": n, "q": n, "r": n, "s": n,
		"a": v, "b": v, "c": v, "d": v,
	}
	return c, r
}
