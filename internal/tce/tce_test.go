package tce

import (
	"strings"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/trace"
)

func TestValidate(t *testing.T) {
	c, r := TwoIndexTransform()
	if err := c.Validate(r); err != nil {
		t.Fatal(err)
	}
	bad := Contraction{
		Result: Tensor{Name: "B", Indices: []string{"z"}},
		Inputs: []Tensor{{Name: "A", Indices: []string{"i"}}},
	}
	if err := bad.Validate(IndexRanges{"i": expr.Var("N"), "z": expr.Var("N")}); err == nil {
		t.Fatal("result index absent from inputs accepted")
	}
	dup := Contraction{
		Result: Tensor{Name: "B", Indices: []string{"i"}},
		Inputs: []Tensor{{Name: "A", Indices: []string{"i", "i"}}},
	}
	if err := dup.Validate(IndexRanges{"i": expr.Var("N")}); err == nil {
		t.Fatal("repeated index in one input accepted")
	}
}

func TestSumIndices(t *testing.T) {
	c, _ := TwoIndexTransform()
	got := c.SumIndices()
	if len(got) != 2 || got[0] != "i" || got[1] != "j" {
		t.Fatalf("sum indices %v", got)
	}
}

// TestOpMinTwoIndex: the optimal plan contracts A with C2 (or C1) first,
// reducing 4-index naive O(N^4)-per-output work to two matrix products.
func TestOpMinTwoIndex(t *testing.T) {
	c, r := TwoIndexTransform()
	rank := expr.Env{"N": 100, "V": 100}
	tree, err := OpMin(c, r, rank)
	if err != nil {
		t.Fatal(err)
	}
	steps := tree.Sequence()
	if len(steps) != 2 {
		t.Fatalf("two-index plan has %d steps, want 2", len(steps))
	}
	naive, _ := c.NaiveFlops(r).Eval(rank)
	opt, _ := tree.TotalFlops().Eval(rank)
	if opt >= naive {
		t.Fatalf("opmin did not help: %d vs naive %d", opt, naive)
	}
	// Optimal: 2·N²·V + 2·N·V² = 4e6+... = 2*1e6*... with N=V=100:
	// 2·100³ + 2·100³ = 4e6; naive = 2·2·100⁴ = 4e8.
	if opt != 4_000_000 {
		t.Fatalf("optimal flops %d want 4000000 (plan %s)", opt, tree)
	}
}

// TestOpMinFourIndex reproduces §2's reduction from O(V^4·N^4) to
// O(V·N^4)-dominated work: four successive index transformations.
func TestOpMinFourIndex(t *testing.T) {
	c, r := FourIndexTransform()
	rank := expr.Env{"N": 64, "V": 32}
	tree, err := OpMin(c, r, rank)
	if err != nil {
		t.Fatal(err)
	}
	steps := tree.Sequence()
	if len(steps) != 4 {
		t.Fatalf("four-index plan has %d steps, want 4", len(steps))
	}
	// The optimal chain transforms one index at a time:
	// 2·(V·N^4 + V^2·N^3 + V^3·N^2 + V^4·N).
	want := int64(2 * (32*64*64*64*64 + 32*32*64*64*64 + 32*32*32*64*64 + 32*32*32*32*64))
	got, _ := tree.TotalFlops().Eval(rank)
	if got != want {
		t.Fatalf("four-index optimal flops %d want %d (plan %s)", got, want, tree)
	}
	naive, _ := c.NaiveFlops(r).Eval(rank)
	if naive <= got {
		t.Fatalf("naive %d not worse than optimal %d", naive, got)
	}
}

func TestGenLoopNestTwoIndex(t *testing.T) {
	c, r := TwoIndexTransform()
	tree, err := OpMin(c, r, expr.Env{"N": 100, "V": 100})
	if err != nil {
		t.Fatal(err)
	}
	nest, err := GenLoopNest("two-index-unfused", tree.Sequence(), r)
	if err != nil {
		t.Fatal(err)
	}
	// 2 steps × (init + accumulate) = 4 statements.
	if got := len(nest.Stmts()); got != 4 {
		t.Fatalf("%d statements, want 4", got)
	}
	// The generated program must be analyzable and traceable.
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{"N": 20, "V": 16}
	p, err := trace.Compile(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckBounds(); err != nil {
		t.Fatal(err)
	}
	watches := []int64{8, 64, 512, 100000}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.Run(sim.Access)
	res := sim.Results()
	for i, cap := range watches {
		pred, err := a.PredictTotal(env, cap)
		if err != nil {
			t.Fatal(err)
		}
		diff := pred - res.Misses[i]
		if diff < 0 {
			diff = -diff
		}
		tol := res.Misses[i]/5 + 3000
		if diff > tol {
			t.Errorf("cap %d: predicted %d vs simulated %d", cap, pred, res.Misses[i])
		}
	}
}

func TestFusableIndicesAndMemory(t *testing.T) {
	c, r := TwoIndexTransform()
	tree, err := OpMin(c, r, expr.Env{"N": 100, "V": 100})
	if err != nil {
		t.Fatal(err)
	}
	steps := tree.Sequence()
	fus := FusableIndices(steps[0], steps[1])
	if len(fus) == 0 {
		t.Fatalf("no fusable indices between %v and %v", steps[0], steps[1])
	}
	fusedSet := map[string]bool{}
	for _, ix := range fus {
		fusedSet[ix] = true
	}
	before, _ := IntermediateSize(steps[0].Out, nil, r).Eval(expr.Env{"N": 100, "V": 100})
	after, _ := IntermediateSize(steps[0].Out, fusedSet, r).Eval(expr.Env{"N": 100, "V": 100})
	if after >= before {
		t.Fatalf("fusion did not shrink intermediate: %d -> %d", before, after)
	}
	// Full fusion of the two-index intermediate reaches a scalar.
	if after != 1 {
		t.Fatalf("two-index intermediate fuses to %d elements, want 1", after)
	}
}

func TestFusedTwoIndexNest(t *testing.T) {
	n := expr.Var("N")
	v := expr.Var("V")
	r := IndexRanges{"i": n, "j": n, "m": v, "n": v}
	nest, err := FusedTwoIndex(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nest.String(), "T[1]") {
		t.Fatalf("intermediate not scalar:\n%s", nest)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{"N": 24, "V": 16}
	p, err := trace.Compile(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckBounds(); err != nil {
		t.Fatal(err)
	}
	watches := []int64{2, 30, 300, 100000}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.Run(sim.Access)
	res := sim.Results()
	for i, cap := range watches {
		pred, err := a.PredictTotal(env, cap)
		if err != nil {
			t.Fatal(err)
		}
		diff := pred - res.Misses[i]
		if diff < 0 {
			diff = -diff
		}
		tol := res.Misses[i]/5 + 3000
		if diff > tol {
			t.Errorf("cap %d: predicted %d vs simulated %d\n%s", cap, pred, res.Misses[i], a.Table())
		}
	}
}

func TestGenLoopNestRejectsScalar(t *testing.T) {
	steps := []BinaryStep{{
		Out: Tensor{Name: "S"},
		In1: Tensor{Name: "X", Indices: []string{"i"}},
		In2: Tensor{Name: "Y", Indices: []string{"i"}},
	}}
	if _, err := GenLoopNest("dot", steps, IndexRanges{"i": expr.Var("N")}); err == nil {
		t.Fatal("scalar output accepted by unfused generator")
	}
}

func TestNaiveFlopsSingleInput(t *testing.T) {
	c := Contraction{
		Result: Tensor{Name: "B", Indices: []string{"i"}},
		Inputs: []Tensor{{Name: "A", Indices: []string{"i", "j"}}},
	}
	r := IndexRanges{"i": expr.Var("N"), "j": expr.Var("N")}
	got, _ := c.NaiveFlops(r).Eval(expr.Env{"N": 10})
	if got != 200 {
		t.Fatalf("naive flops %d want 200", got)
	}
}
