// Package testutil provides the nest fixtures shared across test suites:
// the paper's kernels in analyzed form and the random-nest generator in a
// fail-fast wrapper. The tile-search, validation and command tests all
// construct the same small set of nests; building them here keeps the
// construction in one place instead of per-file copies.
//
// The helpers take testing.TB, so they work from tests, benchmarks and
// fuzz targets alike, and fail the caller directly on construction errors
// (which are environment bugs, not conditions under test).
package testutil

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/nestgen"
)

// TiledMatmulNest returns the paper's Fig. 2 tiled matrix-multiplication
// nest (bounds N, tiles TI/TJ/TK).
func TiledMatmulNest(tb testing.TB) *loopir.Nest {
	tb.Helper()
	nest, err := kernels.TiledMatmul()
	if err != nil {
		tb.Fatal(err)
	}
	return nest
}

// AnalyzedMatmul returns the full-model analysis of the tiled matmul.
func AnalyzedMatmul(tb testing.TB) *core.Analysis {
	tb.Helper()
	a, err := core.Analyze(TiledMatmulNest(tb))
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

// TiledTwoIndexNest returns the paper's Fig. 6 tiled fused two-index
// transform with symbolic bounds (NI/NJ/NM/NN, tiles TI/TJ/TM/TN).
func TiledTwoIndexNest(tb testing.TB) *loopir.Nest {
	tb.Helper()
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		tb.Fatal(err)
	}
	return nest
}

// AnalyzedTwoIndex returns the full-model analysis of the tiled two-index
// transform.
func AnalyzedTwoIndex(tb testing.TB) *core.Analysis {
	tb.Helper()
	a, err := core.Analyze(TiledTwoIndexNest(tb))
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

// GenerateNest draws the i-th random nest from r, failing the test on
// generation errors. The (r, i, cfg) triple is the reproduction recipe:
// re-running with the same source state regenerates the same nest.
func GenerateNest(tb testing.TB, r *rand.Rand, i int, cfg nestgen.Config) (*loopir.Nest, expr.Env) {
	tb.Helper()
	nest, env, err := nestgen.Generate(r, i, cfg)
	if err != nil {
		tb.Fatalf("nest #%d: generation failed: %v", i, err)
	}
	return nest, env
}
