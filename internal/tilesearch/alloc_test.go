package tilesearch

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/testutil"
)

// The fix this file guards: candidate scoring used to build a fresh Env map
// (BaseEnv copy + tile merge) per candidate and tree-walk every expression.
// The frame path binds tile slots into a reused per-worker register file and
// runs compiled programs, so a warm evaluation allocates only the two cache
// key strings (candidate key + per-component keys).

func warmEvaluator(tb testing.TB, treeEval bool) (*evaluator, map[string]int64) {
	tb.Helper()
	a := testutil.AnalyzedMatmul(tb)
	ev := newEvaluator(a, Options{
		Dims:       matmulDims(64),
		CacheElems: 512,
		BaseEnv:    expr.Env{"N": 64},
		TreeEval:   treeEval,
	})
	tiles := map[string]int64{"TI": 8, "TJ": 8, "TK": 8}
	if _, err := ev.eval(tiles, ev.seqFrame); err != nil {
		tb.Fatal(err)
	}
	return ev, tiles
}

// TestWarmCandidateEvalAllocs bounds the steady-state allocation cost of
// scoring an already-seen candidate: one tile-key string, nothing else. A
// regression to per-candidate Env maps shows up as several extra allocations
// per op.
func TestWarmCandidateEvalAllocs(t *testing.T) {
	ev, tiles := warmEvaluator(t, false)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ev.eval(tiles, ev.seqFrame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("warm candidate eval allocates %.1f objects/op, want <= 2", allocs)
	}
}

// TestWarmFrameScoringAllocs bounds the cost of scoring a *new* evaluation
// of known component bindings through the frame path (the inner loop of the
// search once the eval cache is warm): at most one key string per component
// plus the candidate bookkeeping.
func TestWarmFrameScoringAllocs(t *testing.T) {
	ev, tiles := warmEvaluator(t, false)
	f := ev.seqFrame
	for i, d := range ev.opt.Dims {
		f.Set(ev.dimSlots[i], tiles[d.Symbol])
	}
	comps := len(ev.a.Components)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ev.ec.PredictTotalFrame(f, ev.opt.CacheElems); err != nil {
			t.Fatal(err)
		}
	})
	if max := float64(comps + 2); allocs > max {
		t.Errorf("warm frame scoring allocates %.1f objects/op over %d components, want <= %.0f",
			allocs, comps, max)
	}
}

// benchEval measures the uncached scoring path by rotating through a window
// of tile assignments large enough that the candidate cache always misses
// would be wrong — instead it scores a fixed candidate set so both paths do
// identical (fully warm) work and the benchmark isolates per-candidate
// overhead: Env building + tree walking vs slot stores + compiled programs.
func benchEval(b *testing.B, treeEval bool) {
	ev, _ := warmEvaluator(b, treeEval)
	tileSet := []map[string]int64{
		{"TI": 4, "TJ": 4, "TK": 4},
		{"TI": 8, "TJ": 8, "TK": 8},
		{"TI": 16, "TJ": 16, "TK": 16},
		{"TI": 8, "TJ": 16, "TK": 32},
	}
	f := ev.seqFrame
	for _, tiles := range tileSet {
		if _, err := ev.compute(tiles, f); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.compute(tileSet[i%len(tileSet)], f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCandidateScoreFrame(b *testing.B) { benchEval(b, false) }
func BenchmarkCandidateScoreTree(b *testing.B)  { benchEval(b, true) }
