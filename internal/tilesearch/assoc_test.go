package tilesearch

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/testutil"
)

// Tests for the set-associative scoring path: Options.Ways/LineElems thread
// a core.CacheConfig through every evaluator branch (compiled frames,
// tree-walking, unknown bounds) and through the knee analysis. The contract
// under test is two-sided: a fully-associative geometry must leave every
// result byte-identical to the capacity-only model, and a set-associative
// one must actually change the scores where conflicts bite.

// TestSearchFullyAssociativeGeometryIdentity: Ways equal to the number of
// lines is a single-set (fully-associative) geometry, so the search must
// return exactly what the omitted-Ways search returns — best, frontier,
// evaluation counts and cache stats alike.
func TestSearchFullyAssociativeGeometryIdentity(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	const n, cache = 64, 512
	base := Options{
		Dims:       matmulDims(n),
		CacheElems: cache,
		BaseEnv:    expr.Env{"N": n},
		DivisorOf:  n,
	}
	want, err := Search(a, base)
	if err != nil {
		t.Fatal(err)
	}
	full := base
	full.Ways = cache // one set: fully associative
	got, err := Search(a, full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("full-ways search differs from omitted-ways search:\n got %+v\nwant %+v", got, want)
	}
}

// TestSearchInvalidGeometry: both entry points must reject a geometry the
// simulator would reject, before any evaluation happens.
func TestSearchInvalidGeometry(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	opt := Options{
		Dims:       matmulDims(64),
		CacheElems: 512,
		Ways:       3, // 512 lines not divisible by 3 ways
		BaseEnv:    expr.Env{"N": 64},
	}
	if _, err := Search(a, opt); err == nil || !strings.Contains(err.Error(), "cache geometry") {
		t.Fatalf("Search: want cache geometry error, got %v", err)
	}
	if _, err := Exhaustive(a, opt); err == nil || !strings.Contains(err.Error(), "cache geometry") {
		t.Fatalf("Exhaustive: want cache geometry error, got %v", err)
	}
}

// TestSearchSetAssocDiffersAndIsDeterministic: a direct-mapped geometry must
// change candidate scores on the resonant matmul (stride-N column lattices
// land on few sets), and the set-associative search must stay byte-identical
// across parallelism levels and across the compiled/tree-walking paths.
func TestSearchSetAssocDiffersAndIsDeterministic(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	const n, cache = 64, 512
	opt := Options{
		Dims:       matmulDims(n),
		CacheElems: cache,
		Ways:       1,
		BaseEnv:    expr.Env{"N": n},
		DivisorOf:  n,
	}
	dm, err := Search(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	fa := opt
	fa.Ways = 0
	faRes, err := Search(a, fa)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Best.Misses == faRes.Best.Misses {
		t.Errorf("direct-mapped best misses %d equal fully-associative best %d: conflict term had no effect",
			dm.Best.Misses, faRes.Best.Misses)
	}
	for _, parallelism := range []int{2, -1} {
		p := opt
		p.Parallelism = parallelism
		got, err := Search(a, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, dm) {
			t.Fatalf("parallelism %d: set-associative search differs from sequential", parallelism)
		}
	}
	tree := opt
	tree.TreeEval = true
	treeRes, err := Search(a, tree)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(treeRes.Best, dm.Best) {
		t.Fatalf("tree-eval best %v differs from compiled best %v", treeRes.Best, dm.Best)
	}
}

// TestKneeAnalysisConfig: the fully-associative config must delegate (same
// knees, byte for byte); a direct-mapped config must move at least one knee
// (either direction — resonant sets thrash tiles the capacity test accepts,
// and the set split confines thrashing the capacity test condemns) and its
// claims must be self-consistent: at a reported last-fit the conflict-aware
// prediction for that expression's components is actually zero.
func TestKneeAnalysisConfig(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	base := expr.Env{"N": 64, "TI": 8, "TJ": 8, "TK": 8}
	const cache = 512
	faKnees, err := KneeAnalysis(a, base, matmulDims(64), cache)
	if err != nil {
		t.Fatal(err)
	}
	delegated, err := KneeAnalysisConfig(a, base, matmulDims(64), core.CacheConfig{CapacityElems: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(delegated, faKnees) {
		t.Fatalf("fully-associative config knees differ from KneeAnalysis:\n got %v\nwant %v", delegated, faKnees)
	}
	dmKnees, err := KneeAnalysisConfig(a, base, matmulDims(64),
		core.CacheConfig{CapacityElems: cache, Ways: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(dmKnees) == 0 {
		t.Fatal("no knees under direct-mapped config")
	}
	faFit := map[string]int64{}
	for _, k := range faKnees {
		faFit[k.Dim+"|"+k.SD.String()] = k.LastFit
	}
	moved := false
	cfg := core.CacheConfig{CapacityElems: cache, Ways: 1}
	for _, k := range dmKnees {
		if fa, ok := faFit[k.Dim+"|"+k.SD.String()]; ok && k.LastFit != fa {
			moved = true
		}
		if k.LastFit == 0 {
			continue
		}
		// Self-consistency: re-evaluate the model at the reported last-fit
		// and require zero misses for every component carrying this SD.
		env := expr.Env{}
		for kk, vv := range base {
			env[kk] = vv
		}
		env[k.Dim] = k.LastFit
		rep, err := a.PredictMissesConfig(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for ci, c := range a.Components {
			if c.SD.Base.IsInf() || c.SD.String() != k.SD.String() {
				continue
			}
			if rep.Detail[ci].Misses != 0 {
				t.Errorf("%s last-fit %d: component %d (%s) predicts %d misses",
					k.Dim, k.LastFit, ci, k.SD, rep.Detail[ci].Misses)
			}
		}
	}
	if !moved {
		t.Errorf("no knee moved under a direct-mapped 512-element cache:\n%s", FormatKnees(dmKnees))
	}
	if _, err := KneeAnalysisConfig(a, base, matmulDims(64),
		core.CacheConfig{CapacityElems: cache, Ways: 3}); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

// TestSearchSetAssocUnknownBounds: the unknown-bounds reduction must compose
// with the conflict-aware path without error and stay deterministic across
// the frame and tree scoring routes.
func TestSearchSetAssocUnknownBounds(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	const n, cache = 64, 512
	opt := Options{
		Dims:          matmulDims(n),
		CacheElems:    cache,
		Ways:          2,
		BaseEnv:       expr.Env{"N": n},
		UnknownBounds: map[string]bool{"N": true},
		DivisorOf:     n,
	}
	got, err := Search(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	tree := opt
	tree.TreeEval = true
	treeRes, err := Search(a, tree)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(treeRes.Best, got.Best) {
		t.Fatalf("tree-eval unknown-bounds best %v differs from compiled %v", treeRes.Best, got.Best)
	}
}
