package tilesearch

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/obs"
)

// The evaluation engine behind Search and Exhaustive. Candidates are
// evaluated through two cache layers:
//
//  1. a candidate-level cache keyed by the tile assignment, so each distinct
//     tile vector is scored once per search, and
//  2. core.EvalCache, which memoizes per-component stack-distance
//     evaluations on the symbols each component actually mentions, so
//     candidates sharing tile values in some dimensions share most of the
//     component work.
//
// Batches of candidates are evaluated by a fixed worker pool. Each cache
// entry is computed under a sync.Once, so duplicate concurrent evaluations
// coalesce and the Evaluated/CacheStats counters are deterministic for a
// given search regardless of the parallelism level. Batch results are
// returned in input order and reduced sequentially, which makes the search
// outcome — including tie-breaking between equal-miss candidates —
// byte-identical across parallelism levels.
type evaluator struct {
	a       *core.Analysis
	ec      *core.EvalCache
	opt     Options
	ctx     context.Context
	workers int
	// cfg/useConf carry the set-associative geometry when Options.Ways is
	// set; useConf false keeps the fully-associative scoring paths
	// byte-identical to earlier releases.
	cfg     core.CacheConfig
	useConf bool

	// dimSlots are the SymTab slots of the tile symbols, aligned with
	// opt.Dims: binding a candidate into a frame is len(Dims) stores, no
	// map, no allocation.
	dimSlots []int
	// seqFrame is the reusable frame of the calling goroutine (frontier
	// probes and sequential batches). Worker goroutines build their own in
	// evalBatch — frames are single-goroutine scratch.
	seqFrame *expr.Frame
	// Unknown-bounds mode: per-component flags precomputed once so the
	// per-candidate scoring loop does no Vars() set-building (boundFreeMisses
	// used to rebuild them per call). Aligned with a.Components.
	infSD   []bool
	boundSD []bool

	mu    sync.Mutex
	cands map[string]*candEntry
}

type candEntry struct {
	once sync.Once
	c    Candidate
	err  error
}

func newEvaluator(a *core.Analysis, opt Options) *evaluator {
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opt.Parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		workers = 1
	}
	ev := &evaluator{
		a:       a,
		ec:      core.NewEvalCacheWithMetrics(a, opt.Obs),
		opt:     opt,
		ctx:     ctx,
		workers: workers,
		cands:   map[string]*candEntry{},
	}
	ev.cfg = opt.cacheConfig()
	ev.useConf = !ev.cfg.FullyAssociative()
	tab := a.SymTab()
	ev.dimSlots = make([]int, len(opt.Dims))
	for i, d := range opt.Dims {
		ev.dimSlots[i] = tab.Slot(d.Symbol)
	}
	ev.seqFrame = ev.newFrame()
	if opt.UnknownBounds != nil {
		comps := a.Components
		ev.infSD = make([]bool, len(comps))
		ev.boundSD = make([]bool, len(comps))
		for i, c := range comps {
			if c.SD.Base.IsInf() {
				ev.infSD[i] = true
				continue
			}
			ev.boundSD[i] = c.SD.Base.HasAnyVar(opt.UnknownBounds) ||
				(c.SD.Slope != nil && c.SD.Slope.HasAnyVar(opt.UnknownBounds))
		}
	}
	return ev
}

// newFrame builds a worker-lifetime frame with the base environment already
// bound. Candidates then only overwrite the tile slots: every assignment
// binds every dimension, so no stale tile value survives between candidates.
func (ev *evaluator) newFrame() *expr.Frame {
	f := ev.a.NewFrame()
	f.Bind(ev.opt.BaseEnv)
	return f
}

// entry returns the cache slot for a tile assignment, creating it if needed.
func (ev *evaluator) entry(key string) *candEntry {
	ev.mu.Lock()
	e, ok := ev.cands[key]
	if !ok {
		e = &candEntry{}
		ev.cands[key] = e
	}
	ev.mu.Unlock()
	return e
}

// evaluated reports the number of distinct tile assignments scored so far.
func (ev *evaluator) evaluated() int {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return len(ev.cands)
}

// eval scores one tile assignment, memoized on the assignment key. The
// frame is the calling goroutine's scratch — workers pass their own,
// sequential callers pass ev.seqFrame.
func (ev *evaluator) eval(tiles map[string]int64, f *expr.Frame) (Candidate, error) {
	e := ev.entry(tileKey(tiles, ev.opt.Dims))
	e.once.Do(func() {
		e.c, e.err = ev.compute(tiles, f)
	})
	return e.c, e.err
}

func (ev *evaluator) compute(tiles map[string]int64, f *expr.Frame) (Candidate, error) {
	if ev.opt.TreeEval {
		return ev.computeTree(tiles)
	}
	for i, d := range ev.opt.Dims {
		f.Set(ev.dimSlots[i], tiles[d.Symbol])
	}
	var misses int64
	var err error
	switch {
	case ev.opt.UnknownBounds != nil:
		misses, err = ev.boundFreeMissesFrame(f)
	case ev.useConf:
		misses, err = ev.ec.PredictTotalFrameConfig(f, ev.cfg)
	default:
		misses, err = ev.ec.PredictTotalFrame(f, ev.opt.CacheElems)
	}
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{Tiles: cloneTiles(tiles), Misses: misses}, nil
}

// computeTree is the pre-compilation scoring path — Env maps and
// tree-walking evaluation — kept alive as the measured baseline for
// BENCH_eval.json (Options.TreeEval). Results are identical to compute;
// only the cost differs.
func (ev *evaluator) computeTree(tiles map[string]int64) (Candidate, error) {
	env := expr.Env{}
	for k, v := range ev.opt.BaseEnv {
		env[k] = v
	}
	for k, v := range tiles {
		env[k] = v
	}
	var misses int64
	var err error
	switch {
	case ev.opt.UnknownBounds != nil:
		misses, err = ev.boundFreeMisses(env)
	case ev.useConf:
		misses, err = ev.a.PredictTotalConfig(env, ev.cfg)
	default:
		misses, err = ev.ec.PredictTotal(env, ev.opt.CacheElems)
	}
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{Tiles: cloneTiles(tiles), Misses: misses}, nil
}

// evalBatch scores a slice of tile assignments with the worker pool and
// returns the candidates in input order. The returned error, if any, is the
// one at the lowest input index, matching what a sequential in-order sweep
// would report: indices are handed to workers in increasing order and every
// started item runs to completion, so the earliest failure is always
// observed. Context cancellation aborts un-started items.
func (ev *evaluator) evalBatch(assigns []map[string]int64) ([]Candidate, error) {
	out := make([]Candidate, len(assigns))
	if ev.workers <= 1 || len(assigns) <= 1 {
		for i, a := range assigns {
			if err := ev.ctx.Err(); err != nil {
				return nil, err
			}
			c, err := ev.eval(a, ev.seqFrame)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	}
	errs := make([]error, len(assigns))
	var next int64
	var nextMu sync.Mutex
	take := func() int {
		nextMu.Lock()
		i := int(next)
		next++
		nextMu.Unlock()
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < ev.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker utilization instruments. These are the one family
			// of metrics that legitimately varies with Parallelism: the
			// dynamic take() schedule decides which worker scores which
			// candidate. Busy time is accumulated per item so that
			// (worker.N.busy / batch wall time) reads as utilization.
			var items *obs.Counter
			var busy *obs.Timer
			if ev.opt.Obs != nil {
				items = ev.opt.Obs.Counter(fmt.Sprintf("worker.%d.items", w))
				busy = ev.opt.Obs.Timer(fmt.Sprintf("worker.%d.busy", w))
			}
			f := ev.newFrame() // worker-lifetime frame, reused per candidate
			for {
				i := take()
				if i >= len(assigns) {
					return
				}
				if err := ev.ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				sw := busy.Start()
				out[i], errs[i] = ev.eval(assigns[i], f)
				sw.Stop()
				items.Inc()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// boundFreeMisses scores a candidate in unknown-bounds mode: a component
// whose stack distance avoids the bound symbols is classified exactly; a
// component whose stack distance mentions a bound is assumed to miss (the
// bounds are unknown but large, so any distance proportional to a bound
// exceeds the cache). Counts use the surrogate bounds, which scale all
// candidates identically.
func (ev *evaluator) boundFreeMisses(env expr.Env) (int64, error) {
	var rep *core.MissReport
	var err error
	if ev.useConf {
		rep, err = ev.a.PredictMissesConfig(env, ev.cfg)
	} else {
		rep, err = ev.ec.PredictMisses(env, ev.opt.CacheElems)
	}
	if err != nil {
		return 0, err
	}
	return ev.reduceBoundFree(rep), nil
}

// boundFreeMissesFrame is boundFreeMisses through the frame path.
func (ev *evaluator) boundFreeMissesFrame(f *expr.Frame) (int64, error) {
	var rep *core.MissReport
	var err error
	if ev.useConf {
		rep, err = ev.ec.PredictMissesFrameConfig(f, ev.cfg)
	} else {
		rep, err = ev.ec.PredictMissesFrame(f, ev.opt.CacheElems)
	}
	if err != nil {
		return 0, err
	}
	return ev.reduceBoundFree(rep), nil
}

// reduceBoundFree folds a report with the precomputed per-component flags.
// Detail is in a.Components order on both prediction paths, so the flag
// slices index it directly.
func (ev *evaluator) reduceBoundFree(rep *core.MissReport) int64 {
	var total int64
	for i, d := range rep.Detail {
		switch {
		case ev.infSD[i]:
			// compulsory misses are tile-independent
		case ev.boundSD[i]:
			total += d.Count // assumed miss: SD grows with the bounds
		default:
			total += d.Misses
		}
	}
	return total
}
