package tilesearch

import (
	"fmt"

	"repro/internal/core"
)

// Exhaustive evaluates every tile assignment over the full divisor grid
// (all divisors of DivisorOf up to each dimension's Max; all powers of two
// when DivisorOf is zero) and returns the true optimum over that grid. It
// exists as the baseline the §6 search is measured against: the search must
// match its result while evaluating fewer points.
func Exhaustive(a *core.Analysis, opt Options) (*Result, error) {
	if len(opt.Dims) == 0 {
		return nil, fmt.Errorf("tilesearch: no dimensions to search")
	}
	if opt.MinTile <= 0 {
		opt.MinTile = 1
	}
	ev := &evaluator{a: a, opt: opt, cache: map[string]Candidate{}}
	grid := make([][]int64, len(opt.Dims))
	for i, d := range opt.Dims {
		if opt.DivisorOf != 0 {
			for s := opt.MinTile; s <= d.Max; s++ {
				if opt.DivisorOf%s == 0 {
					grid[i] = append(grid[i], s)
				}
			}
		} else {
			for s := opt.MinTile; s <= d.Max; s *= 2 {
				grid[i] = append(grid[i], s)
			}
		}
		if len(grid[i]) == 0 {
			return nil, fmt.Errorf("tilesearch: empty grid for %s", d.Symbol)
		}
	}
	assign := map[string]int64{}
	var best *Candidate
	var sweep func(i int) error
	sweep = func(i int) error {
		if i == len(opt.Dims) {
			c, err := ev.eval(assign)
			if err != nil {
				return err
			}
			if best == nil || c.Misses < best.Misses {
				cc := c
				best = &cc
			}
			return nil
		}
		for _, s := range grid[i] {
			assign[opt.Dims[i].Symbol] = s
			if err := sweep(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := sweep(0); err != nil {
		return nil, err
	}
	return &Result{Best: *best, Evaluated: len(ev.cache)}, nil
}
