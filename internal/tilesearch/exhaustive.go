package tilesearch

import (
	"fmt"

	"repro/internal/core"
)

// Exhaustive evaluates every tile assignment over the full divisor grid
// (all divisors of DivisorOf up to each dimension's Max; all powers of two
// when DivisorOf is zero) and returns the true optimum over that grid. It
// exists as the baseline the §6 search is measured against: the search must
// match its result while evaluating fewer points.
//
// The grid is enumerated in deterministic row-major order, scored as one
// batch on the worker pool (Options.Parallelism), and reduced sequentially,
// so ties break toward the earliest grid point exactly as a nested
// sequential sweep would.
func Exhaustive(a *core.Analysis, opt Options) (*Result, error) {
	if len(opt.Dims) == 0 {
		return nil, fmt.Errorf("tilesearch: no dimensions to search")
	}
	if err := opt.cacheConfig().Validate(); err != nil {
		return nil, err
	}
	if opt.MinTile <= 0 {
		opt.MinTile = 1
	}
	ev := newEvaluator(a, opt)
	grid := make([][]int64, len(opt.Dims))
	for i, d := range opt.Dims {
		if opt.DivisorOf != 0 {
			for s := opt.MinTile; s <= d.Max; s++ {
				if opt.DivisorOf%s == 0 {
					grid[i] = append(grid[i], s)
				}
			}
		} else {
			for s := opt.MinTile; s <= d.Max; s *= 2 {
				grid[i] = append(grid[i], s)
			}
		}
		if len(grid[i]) == 0 {
			return nil, fmt.Errorf("tilesearch: empty grid for %s", d.Symbol)
		}
	}
	assigns := enumerate(grid, opt.Dims)
	opt.Obs.Counter("search.candidates.exhaustive").Add(int64(len(assigns)))
	span := opt.Trace.Start("search.exhaustive")
	span.SetAttr("candidates", int64(len(assigns)))
	cands, err := ev.evalBatch(assigns)
	span.End()
	if err != nil {
		return nil, err
	}
	best := bestOf(cands)
	opt.Obs.Gauge("search.evaluated").Set(int64(ev.evaluated()))
	return &Result{
		Best:      best,
		Evaluated: ev.evaluated(),
		Cache:     ev.ec.Stats(),
	}, nil
}
