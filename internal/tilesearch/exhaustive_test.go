package tilesearch

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/testutil"
)

// TestSearchMatchesExhaustive: on the tiled matmul the §6 search must find
// a tile at least as good as the full divisor-grid optimum, with fewer
// model evaluations.
func TestSearchMatchesExhaustive(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	const n = 64
	const cache = 512
	opt := Options{
		Dims:       matmulDims(n),
		CacheElems: cache,
		BaseEnv:    expr.Env{"N": n},
		DivisorOf:  n,
	}
	search, err := Search(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	exOpt := opt
	exOpt.MinTile = 2
	ex, err := Exhaustive(a, exOpt)
	if err != nil {
		t.Fatal(err)
	}
	if search.Best.Misses > ex.Best.Misses {
		t.Errorf("search best %v worse than exhaustive %v", search.Best, ex.Best)
	}
	if search.Evaluated >= ex.Evaluated {
		t.Errorf("search evaluated %d points, exhaustive %d — no pruning benefit",
			search.Evaluated, ex.Evaluated)
	}
}

func TestExhaustivePowerOfTwoGrid(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	opt := Options{
		Dims:       matmulDims(32),
		CacheElems: 256,
		BaseEnv:    expr.Env{"N": 32},
		MinTile:    4,
	}
	res, err := Exhaustive(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Grid: {4,8,16,32}^3 = 64 points.
	if res.Evaluated != 64 {
		t.Errorf("evaluated %d, want 64", res.Evaluated)
	}
	if res.Best.Misses <= 0 {
		t.Errorf("best %v", res.Best)
	}
}

func TestExhaustiveValidation(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	if _, err := Exhaustive(a, Options{}); err == nil {
		t.Fatal("empty dims accepted")
	}
}
