package tilesearch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/testutil"
)

// FuzzAnalyzeNoPanic feeds fuzzed loop-bound and tile-size values through
// the full model pipeline — core.AnalyzeWithOptions, PredictMisses and
// Search — and asserts the absence of panics and of negative miss counts.
// Inputs outside the model's class (tiles that do not divide the bound,
// absurd capacities) must surface as errors, never as panics or negative
// predictions.
//
// The seed corpus is taken from the worked examples: the tiled matmul of
// Table 3 (N=64, 8×8×8 tiles, 512-element cache) and the TCE two-index
// fusion example (occupied/virtual ranks 100 and 40, tiles from the fused
// chain demo).
func FuzzAnalyzeNoPanic(f *testing.F) {
	f.Add(int64(64), int64(8), int64(8), int64(8), int64(512), uint8(7))
	f.Add(int64(100), int64(40), int64(10), int64(4), int64(8192), uint8(7)) // TCE-fusion ranks
	f.Add(int64(32), int64(5), int64(3), int64(32), int64(1), uint8(0))      // non-dividing tiles
	f.Add(int64(1), int64(1), int64(1), int64(1), int64(1<<40), uint8(3))    // degenerate bound, huge cache
	f.Fuzz(func(t *testing.T, n, ti, tj, tk, cache int64, optBits uint8) {
		// Clamp to keep a single case fast; sign and divisibility stay
		// fuzzer-controlled.
		n = clamp(n, 1, 256)
		ti, tj, tk = clamp(ti, 1, n), clamp(tj, 1, n), clamp(tk, 1, n)
		cache = clamp(cache, 1, 1<<40)

		nest := testutil.TiledMatmulNest(t)
		opts := core.Options{
			CarrierCorrection: optBits&1 != 0,
			ComplementRule:    optBits&2 != 0,
			TailToHeadWrap:    optBits&4 != 0,
		}
		a, err := core.AnalyzeWithOptions(nest, opts)
		if err != nil {
			return // rejected programs are fine; panics are not
		}

		env := expr.Env{"N": n, "TI": ti, "TJ": tj, "TK": tk}
		if rep, err := a.PredictMisses(env, cache); err == nil {
			if rep.Total < 0 {
				t.Fatalf("negative total misses %d for env %v cache %d", rep.Total, env, cache)
			}
			if rep.Accesses < 0 {
				t.Fatalf("negative access count %d for env %v", rep.Accesses, env)
			}
			for _, d := range rep.Detail {
				if d.Misses < 0 || d.Count < 0 {
					t.Fatalf("negative component count/misses %+v for env %v cache %d", d, env, cache)
				}
				if d.Misses > d.Count {
					t.Fatalf("component misses %d exceed instances %d for env %v cache %d",
						d.Misses, d.Count, env, cache)
				}
			}
		}

		res, err := Search(a, Options{
			Dims:        []Dim{{"TI", n}, {"TJ", n}, {"TK", n}},
			CacheElems:  cache,
			BaseEnv:     expr.Env{"N": n},
			DivisorOf:   n,
			Parallelism: int(optBits%3) + 1,
		})
		if err == nil {
			if res.Best.Misses < 0 {
				t.Fatalf("search returned negative misses: %v", res.Best)
			}
			if res.Evaluated <= 0 {
				t.Fatalf("search evaluated nothing: %+v", res)
			}
		}
	})
}

func clamp(v, lo, hi int64) int64 {
	if v < 0 {
		v = -v
	}
	if v < 0 { // MinInt64
		return lo
	}
	v = lo + v%(hi-lo+1)
	return v
}
