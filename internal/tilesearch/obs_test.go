package tilesearch

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/testutil"
)

// deterministicCounters are the search metrics that must not depend on the
// parallelism level: candidate counts per phase, pruning decisions and the
// eval-cache accounting. Only the worker.* utilization family may vary.
var deterministicCounters = []string{
	"search.candidates.coarse",
	"search.candidates.frontier",
	"search.candidates.refine",
	"search.pruned",
	"evalcache.lookups",
	"evalcache.hits",
	"evalcache.misses",
	"evalcache.frame_evals",
}

// TestSearchMetricsParallelismInvariant: running the same search at -j 1 and
// -j 8 must produce identical totals for every deterministic counter and
// gauge. Coalesced waits are the one cache counter that may differ (they
// count races), but hits+misses must still partition lookups on both sides.
func TestSearchMetricsParallelismInvariant(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	run := func(j int) *obs.Metrics {
		m := obs.New()
		opt := Options{
			Dims:        matmulDims(64),
			CacheElems:  512,
			BaseEnv:     expr.Env{"N": 64},
			DivisorOf:   64,
			Parallelism: j,
			Obs:         m,
		}
		if _, err := Search(a, opt); err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		return m
	}
	m1, m8 := run(1), run(8)
	for _, name := range deterministicCounters {
		v1 := m1.Counter(name).Load()
		v8 := m8.Counter(name).Load()
		if v1 != v8 {
			t.Errorf("%s: j=1 gives %d, j=8 gives %d", name, v1, v8)
		}
		if v1 == 0 && !strings.HasPrefix(name, "search.pruned") {
			t.Errorf("%s: counter never incremented at j=1", name)
		}
	}
	for _, name := range []string{"search.frontier.size", "search.evaluated", "evalcache.entries"} {
		v1 := m1.Gauge(name).Load()
		v8 := m8.Gauge(name).Load()
		if v1 != v8 {
			t.Errorf("gauge %s: j=1 gives %d, j=8 gives %d", name, v1, v8)
		}
		if v1 <= 0 {
			t.Errorf("gauge %s: non-positive value %d at j=1", name, v1)
		}
	}
	for _, m := range []*obs.Metrics{m1, m8} {
		l := m.Counter("evalcache.lookups").Load()
		h := m.Counter("evalcache.hits").Load()
		mi := m.Counter("evalcache.misses").Load()
		if h+mi != l {
			t.Errorf("evalcache hits %d + misses %d != lookups %d", h, mi, l)
		}
	}
	// The sequential run never races, so nothing coalesces.
	if c := m1.Counter("evalcache.coalesced").Load(); c != 0 {
		t.Errorf("sequential run coalesced %d cache waits", c)
	}
	// Worker instruments appear only on the parallel path. Names() prefixes
	// each entry with its kind ("counter:", "timer:"), so match on contains.
	for _, name := range m1.Names() {
		if strings.Contains(name, "worker.") {
			t.Errorf("sequential run registered worker metric %s", name)
		}
	}
	foundWorker := false
	for _, name := range m8.Names() {
		if strings.Contains(name, "worker.") {
			foundWorker = true
		}
	}
	if !foundWorker {
		t.Error("parallel run registered no worker utilization metrics")
	}
}

// TestExhaustiveCandidatesMatchGridCount: the exhaustive report's candidate
// counter must equal the analytically-known grid size (divisors of 24 that
// are ≥ MinTile, per dimension), and the evaluated gauge must equal the
// number of distinct assignments actually scored.
func TestExhaustiveCandidatesMatchGridCount(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	m := obs.New()
	const n = 24
	res, err := Exhaustive(a, Options{
		Dims:       matmulDims(n),
		CacheElems: 512,
		BaseEnv:    expr.Env{"N": n},
		DivisorOf:  n,
		Obs:        m,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Divisors of 24: 1, 2, 3, 4, 6, 8, 12, 24 — eight per dimension.
	const perDim = 8
	want := int64(perDim * perDim * perDim)
	if got := m.Counter("search.candidates.exhaustive").Load(); got != want {
		t.Errorf("exhaustive candidates counter %d, want %d", got, want)
	}
	if got := m.Gauge("search.evaluated").Load(); got != int64(res.Evaluated) {
		t.Errorf("evaluated gauge %d, Result.Evaluated %d", got, res.Evaluated)
	}
	if res.Evaluated != int(want) {
		t.Errorf("exhaustive evaluated %d distinct assignments, grid has %d", res.Evaluated, want)
	}
}

// TestSearchTraceSpans: a trace recorder handed to Search must come back
// with the phase spans in order, all closed, with candidate-count attrs
// matching the counters.
func TestSearchTraceSpans(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	m := obs.New()
	tr := obs.NewTrace()
	_, err := Search(a, Options{
		Dims:       matmulDims(64),
		CacheElems: 512,
		BaseEnv:    expr.Env{"N": 64},
		DivisorOf:  64,
		Obs:        m,
		Trace:      tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := tr.Records()
	if len(recs) == 0 {
		t.Fatal("no spans recorded")
	}
	byName := map[string]obs.SpanRecord{}
	for _, r := range recs {
		if r.Nanos < 0 {
			t.Errorf("span %s has negative duration %d", r.Name, r.Nanos)
		}
		byName[r.Name] = r
	}
	for _, want := range []string{"search.coarse", "search.frontier"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("missing span %q in %v", want, recs)
		}
	}
	if got := byName["search.coarse"].Attrs["candidates"]; got != m.Counter("search.candidates.coarse").Load() {
		t.Errorf("coarse span candidates attr %d != counter %d",
			got, m.Counter("search.candidates.coarse").Load())
	}
	// Refine spans carry their round number.
	foundRefine := false
	for _, r := range recs {
		if r.Name == "search.refine" {
			foundRefine = true
			if _, ok := r.Attrs["round"]; !ok {
				t.Errorf("refine span lacks round attr: %+v", r)
			}
		}
	}
	if !foundRefine {
		t.Error("no search.refine spans recorded")
	}
}
