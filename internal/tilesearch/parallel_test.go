package tilesearch

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/expr"
	"repro/internal/testutil"
)

// marshal renders a Result (including map-valued tiles, which encoding/json
// emits with sorted keys) so equality can be asserted byte for byte.
func marshal(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSearchParallelEquivalence: Search must return byte-identical Results
// — best candidate, frontier ordering, evaluation count and cache counters —
// at parallelism levels 1, 2 and 8, on both fixtures.
func TestSearchParallelEquivalence(t *testing.T) {
	fixtures := []struct {
		name string
		opt  Options
	}{
		{"matmul", Options{
			Dims:       matmulDims(64),
			CacheElems: 512,
			BaseEnv:    expr.Env{"N": 64},
			DivisorOf:  64,
		}},
		{"twoindex", Options{
			Dims:       []Dim{{"TI", 256}, {"TJ", 256}, {"TM", 256}, {"TN", 256}},
			CacheElems: 8192,
			BaseEnv:    expr.Env{"NI": 256, "NJ": 256, "NM": 256, "NN": 256},
			DivisorOf:  256,
		}},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			var a = testutil.AnalyzedMatmul(t)
			if fx.name == "twoindex" {
				a = testutil.AnalyzedTwoIndex(t)
			}
			opt := fx.opt
			opt.Parallelism = 1
			seq, err := Search(a, opt)
			if err != nil {
				t.Fatal(err)
			}
			want := marshal(t, seq)
			for _, j := range []int{2, 8} {
				opt.Parallelism = j
				par, err := Search(a, opt)
				if err != nil {
					t.Fatalf("parallelism %d: %v", j, err)
				}
				if got := marshal(t, par); got != want {
					t.Errorf("parallelism %d diverges from sequential:\nseq %s\npar %s", j, want, got)
				}
			}
		})
	}
}

// TestExhaustiveParallelEquivalence does the same for the exhaustive
// baseline, whose single large batch is the main beneficiary of the worker
// pool.
func TestExhaustiveParallelEquivalence(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	opt := Options{
		Dims:       matmulDims(48),
		CacheElems: 512,
		BaseEnv:    expr.Env{"N": 48},
		DivisorOf:  48,
		MinTile:    2,
	}
	opt.Parallelism = 1
	seq, err := Exhaustive(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, seq)
	for _, j := range []int{2, 8} {
		opt.Parallelism = j
		par, err := Exhaustive(a, opt)
		if err != nil {
			t.Fatalf("parallelism %d: %v", j, err)
		}
		if got := marshal(t, par); got != want {
			t.Errorf("parallelism %d diverges:\nseq %s\npar %s", j, want, got)
		}
	}
}

// TestSearchPropagatesMissingBound: an environment that lacks a loop bound
// must surface as an error from every phase and at every parallelism level,
// never as a silently mis-scored candidate.
func TestSearchPropagatesMissingBound(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	for _, j := range []int{1, 4} {
		opt := Options{
			Dims:        matmulDims(64),
			CacheElems:  512,
			BaseEnv:     expr.Env{}, // missing N
			DivisorOf:   64,
			Parallelism: j,
		}
		if _, err := Search(a, opt); err == nil {
			t.Errorf("parallelism %d: Search accepted an env with no bound", j)
		}
		if _, err := Exhaustive(a, opt); err == nil {
			t.Errorf("parallelism %d: Exhaustive accepted an env with no bound", j)
		}
	}
}

// TestSearchErrorDeterministic: the reported error does not depend on the
// parallelism level (the batch reports the lowest-index failure).
func TestSearchErrorDeterministic(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	var msgs []string
	for _, j := range []int{1, 2, 8} {
		_, err := Search(a, Options{
			Dims:        matmulDims(64),
			CacheElems:  512,
			BaseEnv:     expr.Env{},
			DivisorOf:   64,
			Parallelism: j,
		})
		if err == nil {
			t.Fatalf("parallelism %d: no error", j)
		}
		msgs = append(msgs, err.Error())
	}
	for _, m := range msgs[1:] {
		if m != msgs[0] {
			t.Errorf("error differs across parallelism: %q vs %q", msgs[0], m)
		}
	}
}

// TestSearchCancellation: a pre-cancelled context aborts both entry points.
func TestSearchCancellation(t *testing.T) {
	a := testutil.AnalyzedTwoIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{
		Dims:        []Dim{{"TI", 256}, {"TJ", 256}, {"TM", 256}, {"TN", 256}},
		CacheElems:  8192,
		BaseEnv:     expr.Env{"NI": 256, "NJ": 256, "NM": 256, "NN": 256},
		DivisorOf:   256,
		Parallelism: 4,
		Context:     ctx,
	}
	if _, err := Search(a, opt); err != context.Canceled {
		t.Errorf("Search under cancelled context: %v", err)
	}
	if _, err := Exhaustive(a, opt); err != context.Canceled {
		t.Errorf("Exhaustive under cancelled context: %v", err)
	}
}

// TestSearchGOMAXPROCSParallelism: negative parallelism resolves to the
// machine width and still matches the sequential result.
func TestSearchGOMAXPROCSParallelism(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	opt := Options{
		Dims:       matmulDims(64),
		CacheElems: 512,
		BaseEnv:    expr.Env{"N": 64},
		DivisorOf:  64,
	}
	seq, err := Search(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallelism = -1
	par, err := Search(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if marshal(t, seq) != marshal(t, par) {
		t.Error("GOMAXPROCS parallelism diverges from sequential")
	}
}
