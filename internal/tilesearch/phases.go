package tilesearch

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/expr"
)

// §6 of the paper divides the behaviour of the miss count as tiles grow
// into four phases, delimited by the tile sizes at which individual stack
// distances cross the cache capacity. KneeAnalysis makes those transition
// points explicit: for each stack-distance expression and each tile
// dimension, the largest tile value (with the other dimensions held fixed)
// for which the distance still fits in the cache. Only tile sizes just
// below a knee are candidate optima — the pruning insight behind the
// search.

// Knee records one crossing point.
type Knee struct {
	SD        core.LinForm // the stack distance expression
	Dim       string       // the tile dimension being grown
	LastFit   int64        // largest value of Dim with SD <= cache (0 = never fits)
	AlwaysFit bool         // SD never exceeds the cache within the range
}

// KneeAnalysis computes, for every distinct stack-distance expression of
// the analysis, the crossing point along each tile dimension, holding the
// other dimensions at the values in base. Each distance is compiled once
// and the per-value inner loop mutates a single slot of a reused frame —
// the loop used to build a fresh Env map per tile value.
func KneeAnalysis(a *core.Analysis, base expr.Env, dims []Dim, cacheElems int64) ([]Knee, error) {
	tab := a.SymTab()
	f := tab.NewFrame()
	var out []Knee
	for _, sd := range a.StackDistances(nil) {
		pBase := expr.Compile(sd.Base, tab)
		var pSlope *expr.Program
		if !sd.IsConst() {
			pSlope = expr.Compile(sd.Slope, tab)
		}
		// The SD may not mention a dimension at all.
		vars := map[string]bool{}
		sd.Base.Vars(vars)
		if sd.Slope != nil {
			sd.Slope.Vars(vars)
		}
		for _, d := range dims {
			k := Knee{SD: sd, Dim: d.Symbol}
			if !vars[d.Symbol] {
				continue
			}
			// The surrogate free-variable bound maxSD used: the largest value
			// in the environment. The tile value under sweep contributes too,
			// so split off the max over the other bindings once.
			maxOther := int64(1)
			for kk, vv := range base {
				if kk != d.Symbol && vv > maxOther {
					maxOther = vv
				}
			}
			slot := tab.Slot(d.Symbol)
			f.Reset()
			f.Bind(base)
			lastFit := int64(0)
			alwaysFit := true
			for v := int64(1); v <= d.Max; v++ {
				f.Set(slot, v)
				val, err := maxSDFrame(pBase, pSlope, f, maxOther, v)
				if err != nil {
					return nil, err
				}
				if val <= cacheElems {
					lastFit = v
				} else {
					alwaysFit = false
				}
			}
			k.LastFit = lastFit
			k.AlwaysFit = alwaysFit
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dim != out[j].Dim {
			return out[i].Dim < out[j].Dim
		}
		return out[i].LastFit < out[j].LastFit
	})
	return out, nil
}

// KneeAnalysisConfig is KneeAnalysis against a set-associative geometry: a
// tile value "fits" when every component carrying the stack-distance
// expression predicts zero misses under the conflict-aware model, not when
// the raw distance is below capacity. The two notions coincide on a
// fully-associative config, so that case delegates to KneeAnalysis and the
// knee tables stay byte-identical when Ways is omitted. On a set-associative
// config knees move in both directions relative to the conservative
// capacity test: a distance that fits by capacity can still thrash a
// resonant set (knee moves left), and a whole-range thrash that the
// capacity test condemns can be confined by the set split (knee moves
// right).
func KneeAnalysisConfig(a *core.Analysis, base expr.Env, dims []Dim, cfg core.CacheConfig) ([]Knee, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.FullyAssociative() {
		return KneeAnalysis(a, base, dims, cfg.CapacityElems)
	}
	tab := a.SymTab()
	f := tab.NewFrame()
	// Group finite components by their stack-distance expression, in
	// component order, so each distinct expression yields one knee per
	// dimension exactly as KneeAnalysis's StackDistances sweep does.
	type sdGroup struct {
		sd   core.LinForm
		idxs []int
		vars map[string]bool
	}
	var groups []*sdGroup
	byKey := map[string]*sdGroup{}
	for i, c := range a.Components {
		if c.SD.Base.IsInf() {
			continue // compulsory: misses regardless of tile size
		}
		key := c.SD.String()
		g, ok := byKey[key]
		if !ok {
			vars := map[string]bool{}
			c.SD.Base.Vars(vars)
			if c.SD.Slope != nil {
				c.SD.Slope.Vars(vars)
			}
			g = &sdGroup{sd: c.SD, vars: vars}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.idxs = append(g.idxs, i)
	}
	var out []Knee
	for _, d := range dims {
		swept := false
		for _, g := range groups {
			if g.vars[d.Symbol] {
				swept = true
				break
			}
		}
		if !swept {
			continue
		}
		slot := tab.Slot(d.Symbol)
		lastFit := make([]int64, len(groups))
		alwaysFit := make([]bool, len(groups))
		for gi := range alwaysFit {
			alwaysFit[gi] = true
		}
		for v := int64(1); v <= d.Max; v++ {
			f.Reset()
			f.Bind(base)
			f.Set(slot, v)
			rep, err := a.PredictMissesFrameConfig(f, cfg)
			if err != nil {
				return nil, err
			}
			for gi, g := range groups {
				if !g.vars[d.Symbol] {
					continue
				}
				fits := true
				for _, ci := range g.idxs {
					if rep.Detail[ci].Misses > 0 {
						fits = false
						break
					}
				}
				if fits {
					lastFit[gi] = v
				} else {
					alwaysFit[gi] = false
				}
			}
		}
		for gi, g := range groups {
			if !g.vars[d.Symbol] {
				continue
			}
			out = append(out, Knee{SD: g.sd, Dim: d.Symbol, LastFit: lastFit[gi], AlwaysFit: alwaysFit[gi]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dim != out[j].Dim {
			return out[i].Dim < out[j].Dim
		}
		return out[i].LastFit < out[j].LastFit
	})
	return out, nil
}

// maxSD evaluates the largest value a (possibly position-dependent) stack
// distance takes under env: the tree-walking form, kept as the oracle the
// knee tests verify claims against.
func maxSD(sd core.LinForm, env expr.Env) (int64, error) {
	base, err := sd.Base.Eval(env)
	if err != nil {
		return 0, err
	}
	if sd.IsConst() {
		return base, nil
	}
	slope, err := sd.Slope.Eval(env)
	if err != nil {
		return 0, err
	}
	// The free variable's range is not tracked here; bound it by the
	// largest bound-ish symbol in env for a conservative maximum.
	var maxSym int64 = 1
	for _, v := range env {
		if v > maxSym {
			maxSym = v
		}
	}
	if slope > 0 {
		return base + slope*(maxSym-1), nil
	}
	return base, nil
}

// maxSDFrame is maxSD through compiled programs on a frame. maxOther and v
// reconstruct the surrogate free-variable bound — the largest bound symbol —
// without scanning an Env.
func maxSDFrame(pBase, pSlope *expr.Program, f *expr.Frame, maxOther, v int64) (int64, error) {
	base, err := pBase.Eval(f)
	if err != nil {
		return 0, err
	}
	if pSlope == nil {
		return base, nil
	}
	slope, err := pSlope.Eval(f)
	if err != nil {
		return 0, err
	}
	maxSym := maxOther
	if v > maxSym {
		maxSym = v
	}
	if slope > 0 {
		return base + slope*(maxSym-1), nil
	}
	return base, nil
}

// FormatKnees renders the knee table.
func FormatKnees(knees []Knee) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %s\n", "dim", "last-fit", "stack distance")
	for _, k := range knees {
		fit := fmt.Sprint(k.LastFit)
		if k.AlwaysFit {
			fit = "all"
		} else if k.LastFit == 0 {
			fit = "never"
		}
		fmt.Fprintf(&b, "%-6s %-10s %s\n", k.Dim, fit, k.SD)
	}
	return b.String()
}
