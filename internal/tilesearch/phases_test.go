package tilesearch

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/testutil"
)

func TestKneeAnalysisMatmul(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	base := expr.Env{"N": 64, "TI": 8, "TJ": 8, "TK": 8}
	const cache = 512
	knees, err := KneeAnalysis(a, base, matmulDims(64), cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(knees) == 0 {
		t.Fatal("no knees found")
	}
	// Every knee's claim must verify: at LastFit the SD fits, at LastFit+1
	// (if within range) it does not — except for non-monotone expressions,
	// which do not occur for matmul.
	for _, k := range knees {
		if k.AlwaysFit {
			continue
		}
		env := expr.Env{}
		for kk, vv := range base {
			env[kk] = vv
		}
		if k.LastFit > 0 {
			env[k.Dim] = k.LastFit
			v, err := maxSD(k.SD, env)
			if err != nil {
				t.Fatal(err)
			}
			if v > cache {
				t.Errorf("dim %s at last-fit %d: SD %s = %d exceeds cache", k.Dim, k.LastFit, k.SD, v)
			}
		}
	}
	out := FormatKnees(knees)
	if !strings.Contains(out, "TI") || !strings.Contains(out, "stack distance") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}

// TestKneesPredictSearchOptimum: the searched optimum's tile values must sit
// at or below some knee in each dimension — optima never live strictly
// inside a phase (where growing the tile only helps).
func TestKneesPredictSearchOptimum(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	const n, cache = 64, 512
	res, err := Search(a, Options{
		Dims:       matmulDims(n),
		CacheElems: cache,
		BaseEnv:    expr.Env{"N": n},
		DivisorOf:  n,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := expr.Env{"N": n}
	for k, v := range res.Best.Tiles {
		base[k] = v
	}
	knees, err := KneeAnalysis(a, base, matmulDims(n), cache)
	if err != nil {
		t.Fatal(err)
	}
	// For each dimension of the optimum, either some knee sits at or above
	// the chosen value (the choice is knee-limited) or the dimension's SDs
	// always fit (the choice is bound-limited).
	for dim, v := range res.Best.Tiles {
		ok := v == int64(n) // at the bound: nothing to prove
		for _, k := range knees {
			if k.Dim != dim {
				continue
			}
			if k.AlwaysFit || k.LastFit >= v {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("optimum %s=%d not explained by any knee:\n%s", dim, v, FormatKnees(knees))
		}
	}
}
