package tilesearch

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/nestgen"
	"repro/internal/tce"
	"repro/internal/validate"
)

// TestJointNeverWorseThanTileOnly is the differential acceptance test: over
// a corpus of generated nests (perfect reductions, imperfect trees, and
// TCE contraction chains at several sizes), the joint search's winner must
// have simulated misses no worse than the tile-only baseline — the
// identity variant the joint search always scores first. Ties are expected
// when no structural transform is legal or none helps; the corpus as a
// whole must contain strict improvements, or the joint axes did nothing.
func TestJointNeverWorseThanTileOnly(t *testing.T) {
	type caseT struct {
		nestName string
		cache    int64
		env      expr.Env
		pr       *PlanResult
	}
	var cases []caseT

	r := rand.New(rand.NewSource(19))
	for id := 0; id < 8; id++ {
		nest, env, err := nestgen.Generate(r, id, nestgen.Config{})
		if err != nil {
			t.Fatal(err)
		}
		pr, err := SearchPlans(nest, PlanOptions{
			Options: Options{CacheElems: 12, BaseEnv: env},
			Permute: true,
			Fuse:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, caseT{nest.Name, 12, env, pr})
	}
	for id := 0; id < 4; id++ {
		nest, env, err := nestgen.Generate(r, 100+id, nestgen.Config{Imperfect: true})
		if err != nil {
			t.Fatal(err)
		}
		pr, err := SearchPlans(nest, PlanOptions{
			Options: Options{CacheElems: 12, BaseEnv: env},
			Permute: true,
			Fuse:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, caseT{nest.Name, 12, env, pr})
	}
	for _, p := range []struct{ n, v, cache int64 }{
		{12, 6, 48}, {16, 8, 64}, {24, 12, 128}, {32, 16, 256}} {
		chain, err := tce.UnfusedTwoIndex(nil)
		if err != nil {
			t.Fatal(err)
		}
		env := expr.Env{"N": p.n, "V": p.v}
		pr, err := SearchPlans(chain, PlanOptions{
			Options: Options{CacheElems: p.cache, BaseEnv: env},
			Permute: true,
			Fuse:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, caseT{chain.Name, p.cache, env, pr})
	}

	if len(cases) < 16 {
		t.Fatalf("corpus has %d nests, want at least 16", len(cases))
	}
	improved := 0
	for _, c := range cases {
		simBest, err := validate.SimulatedMisses(c.pr.Best().Nest, c.env, c.cache)
		if err != nil {
			t.Fatalf("%s: %v", c.nestName, err)
		}
		simBase, err := validate.SimulatedMisses(c.pr.Baseline().Nest, c.env, c.cache)
		if err != nil {
			t.Fatalf("%s: %v", c.nestName, err)
		}
		if simBest > simBase {
			t.Errorf("%s: joint winner %q simulates worse than tile-only (%d > %d)",
				c.nestName, c.pr.Best().Plan, simBest, simBase)
		}
		if simBest < simBase {
			improved++
		}
	}
	if improved == 0 {
		t.Error("no nest in the corpus improved — the structural axes were inert")
	}
}
