// Plan search: the joint (permutation × fusion × tile size) optimization
// space. The §6 tile search picks tile sizes for a fixed loop structure;
// the structure itself — loop order and fusion — decides which reuse is
// exploitable before tiling ever runs (the paper's Fig. 1, SNIPPETS 2–3).
// SearchPlans enumerates the legal structural variants of a nest as
// loopir.Plans, compiles a core.Analysis per variant, and runs the
// knee-pruned tile search (tilesearch.go) inside each variant with its own
// evaluator — per-variant EvalCache and frame pools — on the existing
// deterministic worker pool. Variants are scored sequentially and each
// inner search is byte-deterministic at any parallelism, so the joint
// result is byte-identical at any -j.
package tilesearch

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/loopir"
)

// permuteDepthCap bounds permutation enumeration to nests of at most this
// depth (4! = 24 orders). Deeper perfect nests skip the permutation axis —
// the same pragmatic cap MLIR's affine interchange applies (SNIPPET 3).
const permuteDepthCap = 4

// PlanOptions configures a joint structural × tile search. The embedded
// Options are the tile-search template applied inside every variant:
// cache geometry, base environment, MinTile/DivisorOf, parallelism,
// context and instrumentation. Options.Dims names pre-existing tile
// symbols of the input nest (searched in every variant, since structural
// transforms preserve symbols); leave it empty for untiled nests and set
// AutoTile to have the search strip-mine perfect variants itself.
type PlanOptions struct {
	Options

	// Permute enumerates the loop orders of perfect variants (legalized by
	// loopir.PermutationHazards, capped at depth 4 per SNIPPET 3).
	Permute bool
	// Fuse adds the variant produced by merging adjacent fusable sibling
	// loops wherever loopir.FusionHazards proves it safe.
	Fuse bool
	// AutoTile appends, after each perfect structural variant, the variant
	// that strip-mines all of its loops (loopir.TileAll) and searches the
	// generated tile symbols. Max tile sizes come from the loop bounds
	// evaluated under BaseEnv.
	AutoTile bool
	// MaxVariants caps the structural variants scored; 0 means 24. Excess
	// variants are dropped deterministically from the end of the
	// enumeration order and counted in PlanResult.Skipped.
	MaxVariants int
	// PlanProgress, when non-nil, is invoked synchronously after each
	// variant's tile search completes, in enumeration order — the plan-level
	// analogue of Options.Progress, and what the serving layer streams as
	// per-variant NDJSON records.
	PlanProgress func(PlanEvent)
}

// PlanEvent reports one scored structural variant to PlanProgress.
type PlanEvent struct {
	Index     int         // variant index in enumeration order
	Count     int         // total variants being scored
	Plan      loopir.Plan // the variant's transformation plan
	NestName  string      // transformed nest name
	Best      Candidate   // variant's best tile assignment
	Evaluated int         // tile candidates evaluated for this variant
}

// PlanVariant is one enumerated point of the structural space: a legal
// plan and the nest it produces. Tiles is non-nil exactly when the plan
// ends in an AutoTile step and carries the generated tile specs.
type PlanVariant struct {
	Plan  loopir.Plan
	Nest  *loopir.Nest
	Tiles []loopir.TileSpec
}

// PlanVariantResult pairs a variant with its tile-search outcome.
type PlanVariantResult struct {
	Plan   loopir.Plan
	Nest   *loopir.Nest
	Result *Result
}

// PlanResult is the outcome of a joint search.
type PlanResult struct {
	// Variants holds every scored variant in enumeration order. The first
	// is always the identity plan — the tile-only search on the original
	// structure, which is both the differential baseline and the tie
	// winner (a structural variant must be strictly better to displace it).
	Variants  []PlanVariantResult
	BestIndex int
	Evaluated int // total tile candidates evaluated across variants
	Skipped   int // structural variants dropped by MaxVariants
}

// Best returns the winning variant.
func (pr *PlanResult) Best() *PlanVariantResult { return &pr.Variants[pr.BestIndex] }

// Baseline returns the identity variant: the tile-only search result.
func (pr *PlanResult) Baseline() *PlanVariantResult { return &pr.Variants[0] }

// SearchPlans runs the joint search: enumerate legal structural variants
// of nest, then run the §6 tile search inside each against its own
// compiled analysis. Variants appear in a deterministic enumeration order
// (identity first), are scored sequentially, and ties keep the earliest
// variant — so when no structural transform is legal, or none helps, the
// result is exactly the tile-only search's.
func SearchPlans(nest *loopir.Nest, opt PlanOptions) (*PlanResult, error) {
	if opt.MinTile <= 0 {
		opt.MinTile = 4
	}
	if err := opt.cacheConfig().Validate(); err != nil {
		return nil, err
	}
	variants, skipped, err := EnumerateVariants(nest, opt)
	if err != nil {
		return nil, err
	}
	m := opt.Obs
	m.Counter("plansearch.variants").Add(int64(len(variants)))
	m.Counter("plansearch.skipped").Add(int64(skipped))
	pr := &PlanResult{Skipped: skipped}
	for i, v := range variants {
		if err := ctxErr(opt); err != nil {
			return nil, err
		}
		span := opt.Trace.Start("plansearch.variant." + v.Plan.String())
		span.SetAttr("variant", int64(i))
		res, err := searchVariant(v, opt)
		span.End()
		if err != nil {
			return nil, fmt.Errorf("tilesearch: plan %q: %w", v.Plan, err)
		}
		pr.Variants = append(pr.Variants, PlanVariantResult{Plan: v.Plan, Nest: v.Nest, Result: res})
		pr.Evaluated += res.Evaluated
		if res.Best.Misses < pr.Variants[pr.BestIndex].Result.Best.Misses {
			pr.BestIndex = i
		}
		if opt.PlanProgress != nil {
			opt.PlanProgress(PlanEvent{
				Index:     i,
				Count:     len(variants),
				Plan:      v.Plan,
				NestName:  v.Nest.Name,
				Best:      res.Best,
				Evaluated: res.Evaluated,
			})
		}
	}
	return pr, nil
}

func ctxErr(opt PlanOptions) error {
	if opt.Context == nil {
		return nil
	}
	return opt.Context.Err()
}

// searchVariant compiles one variant's analysis and scores it: the §6
// search over its tile dimensions, or — for a variant with no tunable
// tiles — a single model evaluation (the structure is the candidate).
// Each variant gets a fresh evaluator, so its EvalCache and frames are
// compiled against its own analysis.
func searchVariant(v PlanVariant, opt PlanOptions) (*Result, error) {
	a, err := core.Analyze(v.Nest)
	if err != nil {
		return nil, err
	}
	vopt := opt.Options
	if v.Tiles != nil {
		vopt.Dims = make([]Dim, len(v.Tiles))
		for i, t := range v.Tiles {
			max, err := t.Bound.Eval(vopt.BaseEnv)
			if err != nil {
				return nil, fmt.Errorf("autotile bound %s: %w", t.Bound, err)
			}
			vopt.Dims[i] = Dim{Symbol: t.TileVar, Max: max}
		}
		sort.Slice(vopt.Dims, func(i, j int) bool { return vopt.Dims[i].Symbol < vopt.Dims[j].Symbol })
	}
	if len(vopt.Dims) == 0 {
		return scoreUntiled(a, vopt)
	}
	return newEvaluator(a, vopt).run()
}

// scoreUntiled scores a variant with no tile dimensions: one evaluation of
// the model under the base environment. The result shape matches a search
// so untiled and tiled variants compare uniformly.
func scoreUntiled(a *core.Analysis, opt Options) (*Result, error) {
	ev := newEvaluator(a, opt)
	c, err := ev.eval(map[string]int64{}, ev.seqFrame)
	if err != nil {
		return nil, err
	}
	return &Result{Best: c, Frontier: []Candidate{c}, Evaluated: 1, Cache: ev.ec.Stats()}, nil
}

// EnumerateVariants builds the structural half of the joint space: every
// legal plan over {fuse, permute, tile} reachable under opt, in a
// deterministic order with the identity plan first. Variants whose loop
// structure duplicates an earlier one are dropped (a permutation equal to
// the original order, a fusion that re-derives an enumerated shape), as
// are variants beyond MaxVariants — the dropped-by-cap count is returned.
func EnumerateVariants(nest *loopir.Nest, opt PlanOptions) ([]PlanVariant, int, error) {
	max := opt.MaxVariants
	if max <= 0 {
		max = 24
	}
	var out []PlanVariant
	skipped := 0
	seen := map[string]bool{}
	add := func(v PlanVariant) {
		key := structureKey(v.Nest)
		if v.Tiles != nil {
			// A tiled variant searches different dimensions than its parent
			// even when a dedupe collision is impossible; key on the plan too.
			key = "tile\x00" + key
		}
		if seen[key] {
			return
		}
		seen[key] = true
		if len(out) >= max {
			skipped++
			return
		}
		out = append(out, v)
	}
	// addWithTile appends a structural variant and, under AutoTile, its
	// strip-mined child right after it.
	addWithTile := func(p loopir.Plan, n *loopir.Nest) {
		add(PlanVariant{Plan: p, Nest: n})
		if !opt.AutoTile {
			return
		}
		tiled, tiles, err := loopir.TileAll(n)
		if err != nil {
			return // imperfect or untileable structure: no tile child
		}
		tp := append(append(loopir.Plan{}, p...), loopir.PlanStep{Op: "tile"})
		add(PlanVariant{Plan: tp, Nest: tiled, Tiles: tiles})
	}

	addWithTile(nil, nest)

	// The structural bases permutations grow from: the original nest and,
	// when legal and structure-changing, its fused form.
	bases := []PlanVariant{{Plan: nil, Nest: nest}}
	if opt.Fuse {
		if fused, err := loopir.ApplyPlan(nest, loopir.Plan{{Op: "fuse"}}); err == nil {
			addWithTile(loopir.Plan{{Op: "fuse"}}, fused)
			bases = append(bases, PlanVariant{Plan: loopir.Plan{{Op: "fuse"}}, Nest: fused})
		}
	}
	if opt.Permute {
		for _, base := range bases {
			chain, _, ok := base.Nest.IsPerfect()
			if !ok || len(chain) < 2 || len(chain) > permuteDepthCap {
				continue
			}
			if len(loopir.PermutationHazards(base.Nest)) > 0 {
				continue
			}
			indices := make([]string, len(chain))
			for i, l := range chain {
				indices[i] = l.Index
			}
			for _, order := range permutations(indices) {
				if strings.Join(order, ",") == strings.Join(indices, ",") {
					continue // the base itself
				}
				step := loopir.PlanStep{Op: "permute", Order: order}
				p := append(append(loopir.Plan{}, base.Plan...), step)
				permuted, err := loopir.ApplyPlan(nest, p)
				if err != nil {
					continue
				}
				addWithTile(p, permuted)
			}
		}
	}
	return out, skipped, nil
}

// structureKey is the dedupe key of a variant: the nest body rendered by
// Unparse with the (suffix-accumulating) nest name stripped, so two plans
// reaching the same loop structure collapse.
func structureKey(n *loopir.Nest) string {
	text := loopir.Unparse(n)
	if i := strings.IndexByte(text, '\n'); i >= 0 {
		return text[i+1:]
	}
	return text
}

// permutations enumerates all orderings of indices in lexicographic order
// of the resulting sequences, starting from the sorted sequence —
// deterministic regardless of the input order.
func permutations(indices []string) [][]string {
	sorted := append([]string(nil), indices...)
	sort.Strings(sorted)
	var out [][]string
	var build func(prefix []string, rest []string)
	build = func(prefix, rest []string) {
		if len(rest) == 0 {
			out = append(out, append([]string(nil), prefix...))
			return
		}
		for i := range rest {
			next := append(append([]string(nil), rest[:i]...), rest[i+1:]...)
			build(append(prefix, rest[i]), next)
		}
	}
	build(nil, sorted)
	return out
}
