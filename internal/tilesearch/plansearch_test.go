package tilesearch

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/tce"
	"repro/internal/testutil"
	"repro/internal/validate"
)

// classicOrder maps a matmul plan to the classic loop-order name of
// SNIPPET 2. The repo's matmul is C[i][k] += A[i][j]·B[j][k] — its
// summation index is j where the classic formulation sums over k — so the
// classic name swaps j and k in the plan's order.
func classicOrder(p loopir.Plan) string {
	order := []string{"i", "j", "k"}
	for _, st := range p {
		if st.Op == "permute" {
			order = st.Order
		}
	}
	var b strings.Builder
	for _, ix := range order {
		switch ix {
		case "j":
			b.WriteString("k")
		case "k":
			b.WriteString("j")
		default:
			b.WriteString(ix)
		}
	}
	return b.String()
}

// TestMatmulOrderRankingSnippet2 is the acceptance check against SNIPPET 2:
// under a real cache geometry the six matmul loop orders rank
// ikj/kij < ijk/jik < jki/kji in simulated misses, and the model's
// predicted ranking agrees on the hard constraint (the best pair beats the
// worst pair). Under a line size of one element the orders tie — the
// ranking is a spatial-locality effect — so the test runs the
// set-associative path (Ways/LineElems) on both sides.
func TestMatmulOrderRankingSnippet2(t *testing.T) {
	const n, cache, ways, line = 128, 2048, 8, 4
	base, err := kernels.Matmul()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := SearchPlans(base, PlanOptions{
		Options: Options{CacheElems: cache, Ways: ways, LineElems: line, BaseEnv: expr.Env{"N": n}},
		Permute: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Variants) != 6 {
		t.Fatalf("expected 6 loop-order variants, got %d", len(pr.Variants))
	}
	pred := map[string]int64{}
	sim := map[string]int64{}
	for _, v := range pr.Variants {
		name := classicOrder(v.Plan)
		s, err := validate.SimulatedMissesGeom(v.Nest, expr.Env{"N": n}, cache, ways, line)
		if err != nil {
			t.Fatal(err)
		}
		pred[name] = v.Result.Best.Misses
		sim[name] = s
	}
	// Simulated: strict three-tier ranking, every best-pair order below
	// every middle-pair order below every worst-pair order.
	for _, lo := range []string{"ikj", "kij"} {
		for _, hi := range []string{"ijk", "jik", "jki", "kji"} {
			if sim[lo] >= sim[hi] {
				t.Errorf("simulated: %s (%d) should beat %s (%d)", lo, sim[lo], hi, sim[hi])
			}
		}
	}
	for _, lo := range []string{"ijk", "jik"} {
		for _, hi := range []string{"jki", "kji"} {
			if sim[lo] >= sim[hi] {
				t.Errorf("simulated: %s (%d) should beat %s (%d)", lo, sim[lo], hi, sim[hi])
			}
		}
	}
	// Predicted: the model must put ikj/kij strictly below jki/kji (the
	// SNIPPET 2 cross-check the search steers by).
	for _, lo := range []string{"ikj", "kij"} {
		for _, hi := range []string{"jki", "kji"} {
			if pred[lo] >= pred[hi] {
				t.Errorf("predicted: %s (%d) should beat %s (%d)", lo, pred[lo], hi, pred[hi])
			}
		}
	}
	// The search's winner must be one of the best-pair orders.
	if got := classicOrder(pr.Best().Plan); got != "ikj" && got != "kij" {
		t.Errorf("joint search picked order %s, want ikj or kij", got)
	}
}

// TestChainFusionBeatsTileOnly is the Fig. 1 acceptance check: on the
// unfused two-index contraction chain the joint search discovers the fused
// variant and its winner has strictly fewer misses than the tile-only
// baseline (the identity variant), in both the model's prediction and the
// exact simulation.
func TestChainFusionBeatsTileOnly(t *testing.T) {
	chain, err := tce.UnfusedTwoIndex(nil)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{"N": 32, "V": 16}
	pr, err := SearchPlans(chain, PlanOptions{
		Options: Options{CacheElems: 256, BaseEnv: env},
		Fuse:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	best, base := pr.Best(), pr.Baseline()
	if best.Plan.String() != "fuse" {
		t.Fatalf("winner plan = %q, want fuse (variants: %d)", best.Plan, len(pr.Variants))
	}
	if best.Result.Best.Misses >= base.Result.Best.Misses {
		t.Errorf("predicted: fused %d not better than identity %d",
			best.Result.Best.Misses, base.Result.Best.Misses)
	}
	simBest, err := validate.SimulatedMisses(best.Nest, env, 256)
	if err != nil {
		t.Fatal(err)
	}
	simBase, err := validate.SimulatedMisses(base.Nest, env, 256)
	if err != nil {
		t.Fatal(err)
	}
	if simBest >= simBase {
		t.Errorf("simulated: fused %d not better than identity %d", simBest, simBase)
	}
}

// TestPlanSearchDeterministicAcrossParallelism checks the -j1 vs -j8
// acceptance bit: the entire PlanResult — winners, per-variant frontiers,
// evaluation counts — serializes byte-identically at every parallelism
// level.
func TestPlanSearchDeterministicAcrossParallelism(t *testing.T) {
	base, err := kernels.Matmul()
	if err != nil {
		t.Fatal(err)
	}
	run := func(par int) []byte {
		pr, err := SearchPlans(base, PlanOptions{
			Options: Options{
				CacheElems:  512,
				BaseEnv:     expr.Env{"N": 64},
				DivisorOf:   64,
				Parallelism: par,
			},
			Permute:  true,
			AutoTile: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		type row struct {
			Plan      string
			Best      Candidate
			Frontier  []Candidate
			Evaluated int
		}
		var rows []row
		for _, v := range pr.Variants {
			rows = append(rows, row{v.Plan.String(), v.Result.Best, v.Result.Frontier, v.Result.Evaluated})
		}
		b, err := json.Marshal(struct {
			BestIndex, Evaluated int
			Rows                 []row
		}{pr.BestIndex, pr.Evaluated, rows})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	j1 := run(1)
	j8 := run(8)
	if string(j1) != string(j8) {
		t.Fatalf("plan search differs between -j1 and -j8:\n%s\n%s", j1, j8)
	}
}

// TestIdentityVariantMatchesTileOnlySearch pins the thin-wrapper contract:
// the baseline (identity) variant of SearchPlans on a pre-tiled nest is
// exactly what the tile-only Search returns for the same options.
func TestIdentityVariantMatchesTileOnlySearch(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	opt := Options{
		Dims:       matmulDims(64),
		CacheElems: 512,
		BaseEnv:    expr.Env{"N": 64},
		DivisorOf:  64,
	}
	want, err := Search(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := SearchPlans(a.Nest, PlanOptions{Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	got := pr.Baseline().Result
	if got.Best.Misses != want.Best.Misses || got.Evaluated != want.Evaluated {
		t.Errorf("baseline variant (misses %d, evaluated %d) != tile-only search (misses %d, evaluated %d)",
			got.Best.Misses, got.Evaluated, want.Best.Misses, want.Evaluated)
	}
	if len(got.Frontier) != len(want.Frontier) {
		t.Errorf("baseline frontier size %d != search frontier size %d",
			len(got.Frontier), len(want.Frontier))
	}
}

// TestPlanProgressEvents checks the streaming contract: one event per
// variant, in enumeration order, with the final event's best equal to the
// result's winner when the winner is the last variant improved upon.
func TestPlanProgressEvents(t *testing.T) {
	base, err := kernels.Matmul()
	if err != nil {
		t.Fatal(err)
	}
	var events []PlanEvent
	pr, err := SearchPlans(base, PlanOptions{
		Options:      Options{CacheElems: 512, BaseEnv: expr.Env{"N": 64}, DivisorOf: 64},
		Permute:      true,
		AutoTile:     true,
		PlanProgress: func(e PlanEvent) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(pr.Variants) {
		t.Fatalf("%d progress events for %d variants", len(events), len(pr.Variants))
	}
	for i, e := range events {
		if e.Index != i || e.Count != len(pr.Variants) {
			t.Errorf("event %d has index %d count %d", i, e.Index, e.Count)
		}
		if e.Plan.String() != pr.Variants[i].Plan.String() {
			t.Errorf("event %d plan %q != variant plan %q", i, e.Plan, pr.Variants[i].Plan)
		}
		if e.Best.Misses != pr.Variants[i].Result.Best.Misses {
			t.Errorf("event %d best %d != variant best %d", i, e.Best.Misses, pr.Variants[i].Result.Best.Misses)
		}
	}
}

// TestMaxVariantsCap checks deterministic truncation: capping the variant
// budget keeps a prefix of the uncapped enumeration and counts the rest.
func TestMaxVariantsCap(t *testing.T) {
	base, err := kernels.Matmul()
	if err != nil {
		t.Fatal(err)
	}
	opt := PlanOptions{
		Options:  Options{CacheElems: 512, BaseEnv: expr.Env{"N": 64}, DivisorOf: 64},
		Permute:  true,
		AutoTile: true,
	}
	full, fullSkipped, err := EnumerateVariants(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fullSkipped != 0 {
		t.Fatalf("uncapped enumeration skipped %d", fullSkipped)
	}
	opt.MaxVariants = 3
	capped, skipped, err := EnumerateVariants(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 3 || skipped != len(full)-3 {
		t.Fatalf("capped: %d variants, %d skipped; want 3 and %d", len(capped), skipped, len(full)-3)
	}
	for i := range capped {
		if capped[i].Plan.String() != full[i].Plan.String() {
			t.Errorf("capped variant %d is %q, full has %q", i, capped[i].Plan, full[i].Plan)
		}
	}
}
