package tilesearch

import (
	"sort"

	"repro/internal/loopir"
)

// CandidateJSON is the serializable form of one evaluated tile assignment:
// tiles are rendered as a map (encoding/json sorts the keys), so equal
// candidates marshal to equal bytes.
type CandidateJSON struct {
	Tiles  map[string]int64 `json:"tiles"`
	Misses int64            `json:"misses"`
}

// ResultJSON is the serializable outcome of a search, including the phase
// summary the serving layer returns from /v1/tilesearch. All fields are
// deterministic for a given search, at every parallelism level.
type ResultJSON struct {
	Best     CandidateJSON   `json:"best"`
	Frontier []CandidateJSON `json:"frontier"`
	// Evaluated counts distinct tile assignments scored; CacheLookups and
	// CacheComputed are the component-evaluation cache counters behind them
	// (hit rate = 1 - computed/lookups).
	Evaluated     int   `json:"evaluated"`
	CacheLookups  int64 `json:"cacheLookups"`
	CacheComputed int64 `json:"cacheComputed"`
}

// JSON converts a search result into its serializable form. Frontier
// candidates are ordered as the search returned them (by miss count, the
// topK order).
func (r *Result) JSON() ResultJSON {
	out := ResultJSON{
		Best:          candidateJSON(r.Best),
		Evaluated:     r.Evaluated,
		CacheLookups:  r.Cache.Lookups,
		CacheComputed: r.Cache.Computed,
	}
	out.Frontier = make([]CandidateJSON, len(r.Frontier))
	for i, c := range r.Frontier {
		out.Frontier[i] = candidateJSON(c)
	}
	return out
}

func candidateJSON(c Candidate) CandidateJSON {
	return CandidateJSON{Tiles: cloneTiles(c.Tiles), Misses: c.Misses}
}

// SortedDims returns the search dimensions sorted by symbol — the
// deterministic order request handlers use when accepting dims as a map.
func SortedDims(maxBySymbol map[string]int64) []Dim {
	syms := make([]string, 0, len(maxBySymbol))
	for s := range maxBySymbol {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	dims := make([]Dim, len(syms))
	for i, s := range syms {
		dims[i] = Dim{Symbol: s, Max: maxBySymbol[s]}
	}
	return dims
}

// PlanVariantJSON is the serializable form of one scored structural
// variant: the plan (as replayable steps and as text), the transformed
// nest's source in the textual format — a client can feed it back to any
// endpoint — and the variant's tile-search result.
type PlanVariantJSON struct {
	Plan     loopir.Plan `json:"plan"`
	PlanText string      `json:"planText"`
	Source   string      `json:"source"`
	Result   ResultJSON  `json:"result"`
}

// PlanResultJSON is the serializable outcome of a joint search. Variants
// appear in enumeration order; the first is always the identity (tile-only
// baseline) and BestIndex selects the winner. Deterministic at every
// parallelism level, like ResultJSON.
type PlanResultJSON struct {
	Variants  []PlanVariantJSON `json:"variants"`
	BestIndex int               `json:"bestIndex"`
	Evaluated int               `json:"evaluated"`
	Skipped   int               `json:"skipped"`
}

// JSON converts a joint-search result into its serializable form.
func (pr *PlanResult) JSON() PlanResultJSON {
	out := PlanResultJSON{
		Variants:  make([]PlanVariantJSON, len(pr.Variants)),
		BestIndex: pr.BestIndex,
		Evaluated: pr.Evaluated,
		Skipped:   pr.Skipped,
	}
	for i, v := range pr.Variants {
		plan := v.Plan
		if plan == nil {
			plan = loopir.Plan{} // identity marshals as [], not null
		}
		out.Variants[i] = PlanVariantJSON{
			Plan:     plan,
			PlanText: v.Plan.String(),
			Source:   loopir.Unparse(v.Nest),
			Result:   v.Result.JSON(),
		}
	}
	return out
}
