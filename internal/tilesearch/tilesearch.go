// Package tilesearch implements the paper's §6 tile-size search: an
// intelligent search over tile-size space driven by the symbolic
// stack-distance expressions of the cache model, rather than exhaustive
// enumeration or empirical trial runs.
//
// The search exploits the four-phase structure of the miss count as a
// function of tile size: misses decrease monotonically as tiles grow until
// some stack distance crosses the cache capacity, at which point they jump.
// Only "frontier" tile sizes — those that cannot be increased in any
// dimension without an additional stack distance exceeding the cache — can
// be optimal, so the search (1) sweeps a coarse grid, (2) keeps the
// frontier, (3) refines around it with halved steps, and (4) prunes
// dominated candidates.
//
// When loop bounds are unknown at compile time (the paper's Table 4), the
// search scores candidates using only the stack-distance expressions that do
// not mention the bound symbols, evaluated with a large surrogate bound.
//
// Candidate evaluation is memoized at two levels (see engine.go) and can be
// spread over a worker pool with Options.Parallelism; results are
// deterministic and identical across parallelism levels.
package tilesearch

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/obs"
)

// Dim describes one tunable tile dimension.
type Dim struct {
	Symbol string // tile-size symbol, e.g. "TI"
	Max    int64  // largest size to consider (typically the loop bound)
}

// Options configures a search.
type Options struct {
	// Dims are the tile dimensions to tune.
	Dims []Dim
	// CacheElems is the cache capacity in elements.
	CacheElems int64
	// Ways, when non-zero, scores candidates against a set-associative
	// geometry (core.CacheConfig{CacheElems, Ways, LineElems}) through the
	// conflict-aware prediction path, so the search can steer away from
	// pathological power-of-two strides. Zero keeps the fully-associative
	// model, byte-identical to earlier releases.
	Ways int64
	// LineElems is the cache line size in elements for the set-associative
	// geometry; it only takes effect alongside Ways (0 means one-element
	// lines).
	LineElems int64
	// BaseEnv binds every non-tile symbol (loop bounds). In unknown-bounds
	// mode these are surrogate values.
	BaseEnv expr.Env
	// CoarseStep is the initial grid step factor; tile sizes sweep powers
	// of two from MinTile to Dim.Max. MinTile defaults to 4.
	MinTile int64
	// UnknownBounds, when set, restricts scoring to components whose
	// stack-distance expressions avoid these symbols (the loop bounds),
	// reproducing the paper's compile-time search with symbolic bounds.
	UnknownBounds map[string]bool
	// DivisorOf, when non-zero, restricts tile sizes to divisors of this
	// value (exact tiling). Defaults to requiring power-of-two sizes only.
	DivisorOf int64
	// Parallelism is the number of concurrent model-evaluation workers.
	// 0 and 1 evaluate sequentially; negative values use GOMAXPROCS. The
	// search result is byte-identical at every parallelism level.
	Parallelism int
	// TreeEval forces the pre-compilation scoring path: per-candidate Env
	// maps and tree-walking expression evaluation instead of per-worker
	// frames and compiled programs. Results are identical either way; the
	// flag exists as the measured baseline for BENCH_eval.json.
	TreeEval bool
	// Context, when non-nil, cancels an in-flight search; Search and
	// Exhaustive then return the context's error.
	Context context.Context
	// Obs, when non-nil, receives the search's instruments: candidate
	// counts per phase ("search.candidates.*"), the frontier size, pruning
	// totals, the component-evaluation cache counters ("evalcache.*", see
	// core.NewEvalCacheWithMetrics) and the per-worker pool utilization
	// ("worker.*", the only instruments that legitimately vary with
	// Parallelism). Nil disables instrumentation at no measurable cost.
	Obs *obs.Metrics
	// Trace, when non-nil, records one span per search phase (coarse,
	// frontier, each refinement round) annotated with candidate counts.
	Trace *obs.Trace
	// Progress, when non-nil, is invoked synchronously from the search
	// goroutine after each phase completes: once for the coarse sweep, once
	// for the frontier cut, and once per refinement round. Events arrive in
	// a deterministic order with deterministic contents at every
	// Parallelism level (each phase is a barrier), which is what lets the
	// serving layer stream them as incremental NDJSON records.
	Progress func(ProgressEvent)
}

// ProgressEvent reports one completed search phase to Options.Progress.
type ProgressEvent struct {
	Phase      string    // "coarse", "frontier" or "refine"
	Round      int64     // refinement round (1-based); 0 for coarse/frontier
	Candidates int64     // candidates evaluated in this phase (frontier: survivors)
	Best       Candidate // best candidate known after this phase
}

// cacheConfig packs the cache geometry options into a core.CacheConfig.
// With Ways zero this is a fully-associative config and every scoring path
// stays on the capacity-only model.
func (opt Options) cacheConfig() core.CacheConfig {
	return core.CacheConfig{
		CapacityElems: opt.CacheElems,
		Ways:          opt.Ways,
		LineElems:     opt.LineElems,
	}
}

// Candidate is one evaluated tile assignment.
type Candidate struct {
	Tiles  map[string]int64
	Misses int64
}

// Result reports the search outcome.
type Result struct {
	Best      Candidate
	Frontier  []Candidate // frontier candidates from the coarse phase
	Evaluated int         // distinct tile assignments scored
	// Cache reports the component-evaluation cache behaviour; for a given
	// search it is deterministic across parallelism levels.
	Cache core.CacheStats
}

// Search runs the §6 algorithm against an analyzed nest. It is the
// tile-only entry point — a single structural variant; SearchPlans
// (plansearch.go) runs this same phase machinery once per legal structural
// variant, each with its own compiled analysis and evaluator.
func Search(a *core.Analysis, opt Options) (*Result, error) {
	if len(opt.Dims) == 0 {
		return nil, fmt.Errorf("tilesearch: no dimensions to search")
	}
	if err := opt.cacheConfig().Validate(); err != nil {
		return nil, err
	}
	if opt.MinTile <= 0 {
		opt.MinTile = 4
	}
	return newEvaluator(a, opt).run()
}

// run executes the four phases against the evaluator's analysis and
// options. Phases are barriers: each batch is evaluated (possibly in
// parallel) and reduced in input order, so the result — including
// tie-breaks — is byte-identical at every parallelism level.
func (ev *evaluator) run() (*Result, error) {
	opt := ev.opt
	m := opt.Obs

	// Phase 1: coarse sweep over power-of-two sizes.
	grid := make([][]int64, len(opt.Dims))
	for i, d := range opt.Dims {
		for s := opt.MinTile; s <= d.Max; s *= 2 {
			if opt.DivisorOf != 0 && opt.DivisorOf%s != 0 {
				continue
			}
			grid[i] = append(grid[i], s)
		}
		if len(grid[i]) == 0 {
			grid[i] = []int64{opt.MinTile}
		}
	}
	coarseAssigns := enumerate(grid, opt.Dims)
	m.Counter("search.candidates.coarse").Add(int64(len(coarseAssigns)))
	span := opt.Trace.Start("search.coarse")
	span.SetAttr("candidates", int64(len(coarseAssigns)))
	coarse, err := ev.evalBatch(coarseAssigns)
	span.End()
	if err != nil {
		return nil, err
	}
	if opt.Progress != nil {
		opt.Progress(ProgressEvent{Phase: "coarse", Candidates: int64(len(coarseAssigns)), Best: bestOf(coarse)})
	}

	// Phase 2: keep the frontier — candidates whose every single-dimension
	// doubling either leaves the grid or pushes an additional stack
	// distance past the cache capacity (detected as a miss increase).
	span = opt.Trace.Start("search.frontier")
	frontier, err := ev.frontier(coarse)
	if err != nil {
		span.End()
		return nil, err
	}
	span.SetAttr("size", int64(len(frontier)))
	span.End()
	m.Gauge("search.frontier.size").Set(int64(len(frontier)))
	if opt.Progress != nil {
		opt.Progress(ProgressEvent{Phase: "frontier", Candidates: int64(len(frontier)), Best: bestOf(frontier)})
	}

	// Phase 3: refine around frontier points with halved steps. Each
	// round's neighborhood is enumerated in deterministic order and scored
	// as one parallel batch.
	best := bestOf(frontier)
	pool := frontier
	round := int64(0)
	for step := opt.MinTile / 2; step >= 1; step /= 2 {
		round++
		var assigns []map[string]int64
		for _, c := range pool {
			for _, d := range opt.Dims {
				for _, delta := range []int64{-step, step} {
					v := c.Tiles[d.Symbol] + delta
					if v < 1 || v > d.Max {
						continue
					}
					if opt.DivisorOf != 0 && opt.DivisorOf%v != 0 {
						continue
					}
					assigns = append(assigns, nt2(cloneTiles(c.Tiles), d.Symbol, v))
				}
			}
		}
		m.Counter("search.candidates.refine").Add(int64(len(assigns)))
		span = opt.Trace.Start("search.refine")
		span.SetAttr("round", round)
		span.SetAttr("step", step)
		span.SetAttr("candidates", int64(len(assigns)))
		next, err := ev.evalBatch(assigns)
		span.End()
		if err != nil {
			return nil, err
		}
		pool = append(pool, next...)
		b := bestOf(pool)
		if b.Misses < best.Misses {
			best = b
		}
		if opt.Progress != nil {
			opt.Progress(ProgressEvent{Phase: "refine", Round: round, Candidates: int64(len(assigns)), Best: best})
		}
		// Phase 4: prune to the most promising candidates before the next
		// refinement round.
		before := len(pool)
		pool = topK(pool, 8)
		m.Counter("search.pruned").Add(int64(before - len(pool)))
	}

	m.Gauge("search.evaluated").Set(int64(ev.evaluated()))
	return &Result{
		Best:      best,
		Frontier:  frontier,
		Evaluated: ev.evaluated(),
		Cache:     ev.ec.Stats(),
	}, nil
}

// enumerate builds the cartesian product of the per-dimension grids in
// row-major order (last dimension fastest), matching a nested sequential
// sweep.
func enumerate(grid [][]int64, dims []Dim) []map[string]int64 {
	total := 1
	for _, g := range grid {
		total *= len(g)
	}
	out := make([]map[string]int64, 0, total)
	assign := map[string]int64{}
	var sweep func(i int)
	sweep = func(i int) {
		if i == len(dims) {
			out = append(out, cloneTiles(assign))
			return
		}
		for _, s := range grid[i] {
			assign[dims[i].Symbol] = s
			sweep(i + 1)
		}
	}
	sweep(0)
	return out
}

// frontier keeps coarse candidates that cannot be doubled in any dimension
// without either leaving the grid or increasing the miss count. Doubled
// points in the power-of-two coarse grid are themselves coarse points, so
// this phase runs on cache hits and needs no parallel batch.
func (ev *evaluator) frontier(coarse []Candidate) ([]Candidate, error) {
	probes := ev.opt.Obs.Counter("search.candidates.frontier")
	var out []Candidate
	for _, c := range coarse {
		isFrontier := true
		for _, d := range ev.opt.Dims {
			v := c.Tiles[d.Symbol] * 2
			if v > d.Max {
				continue
			}
			if ev.opt.DivisorOf != 0 && ev.opt.DivisorOf%v != 0 {
				continue
			}
			probes.Inc()
			bigger, err := ev.eval(nt2(cloneTiles(c.Tiles), d.Symbol, v), ev.seqFrame)
			if err != nil {
				return nil, err
			}
			if bigger.Misses <= c.Misses {
				// growing this dimension does not hurt: not on the frontier
				isFrontier = false
				break
			}
		}
		if isFrontier {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []Candidate{bestOf(coarse)}
	}
	return topK(out, 8), nil
}

func bestOf(cs []Candidate) Candidate {
	best := cs[0]
	for _, c := range cs[1:] {
		if c.Misses < best.Misses {
			best = c
		}
	}
	return best
}

func topK(cs []Candidate, k int) []Candidate {
	sorted := append([]Candidate(nil), cs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Misses < sorted[j].Misses })
	seen := map[string]bool{}
	var out []Candidate
	for _, c := range sorted {
		key := fmt.Sprint(c.Tiles)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
		if len(out) == k {
			break
		}
	}
	return out
}

func cloneTiles(t map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

func nt2(t map[string]int64, k string, v int64) map[string]int64 {
	t[k] = v
	return t
}

// tileKey packs the assignment's tile values in dimension order into a
// fixed-width binary string: the candidate-cache key. Dimension order is
// fixed for a search, so the symbol names need not appear in the key (the
// fmt-rendered form this replaces cost more than some candidate scores).
func tileKey(t map[string]int64, dims []Dim) string {
	buf := make([]byte, 0, 8*len(dims))
	for _, d := range dims {
		v := t[d.Symbol]
		buf = append(buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(buf)
}

// String renders a candidate as (TI=64, TJ=16, ...).
func (c Candidate) String() string {
	keys := make([]string, 0, len(c.Tiles))
	for k := range c.Tiles {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, c.Tiles[k])
	}
	return fmt.Sprintf("(%s) misses=%d", joinComma(parts), c.Misses)
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
