package tilesearch

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/testutil"
)

// matmulDims stays local (it names the package's Dim type); the nest and
// analysis fixtures themselves live in internal/testutil, shared with the
// validation and command tests.
func matmulDims(n int64) []Dim {
	return []Dim{{"TI", n}, {"TJ", n}, {"TK", n}}
}

func TestSearchBeatsExhaustiveGrid(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	const n = 64
	const cache = 512
	opt := Options{
		Dims:       matmulDims(n),
		CacheElems: cache,
		BaseEnv:    expr.Env{"N": n},
		DivisorOf:  n,
	}
	res, err := Search(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive power-of-two grid for comparison.
	best := int64(1) << 62
	var bestTiles [3]int64
	for _, ti := range []int64{4, 8, 16, 32, 64} {
		for _, tj := range []int64{4, 8, 16, 32, 64} {
			for _, tk := range []int64{4, 8, 16, 32, 64} {
				env := expr.Env{"N": n, "TI": ti, "TJ": tj, "TK": tk}
				m, err := a.PredictTotal(env, cache)
				if err != nil {
					t.Fatal(err)
				}
				if m < best {
					best = m
					bestTiles = [3]int64{ti, tj, tk}
				}
			}
		}
	}
	if res.Best.Misses > best {
		t.Errorf("search best %v worse than exhaustive best %d at %v",
			res.Best, best, bestTiles)
	}
	if res.Evaluated > 5*125 {
		t.Errorf("search evaluated %d points — pruning ineffective", res.Evaluated)
	}
}

func TestSearchImprovesOnEquiTiles(t *testing.T) {
	a := testutil.AnalyzedTwoIndex(t)
	const n = 256
	const cache = 8192 // 64 KB of doubles
	opt := Options{
		Dims:       []Dim{{"TI", n}, {"TJ", n}, {"TM", n}, {"TN", n}},
		CacheElems: cache,
		BaseEnv:    expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n},
		DivisorOf:  n,
	}
	res, err := Search(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, eq := range []int64{16, 32, 64, 128} {
		env := expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n,
			"TI": eq, "TJ": eq, "TM": eq, "TN": eq}
		m, err := a.PredictTotal(env, cache)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Misses > m {
			t.Errorf("search best %v worse than equi-tile %d (%d misses)", res.Best, eq, m)
		}
	}
}

// TestUnknownBoundsStability reproduces Table 4's property: with large
// bounds, the tile sizes chosen with known bounds coincide with those chosen
// from bound-free stack distances only.
func TestUnknownBoundsStability(t *testing.T) {
	a := testutil.AnalyzedTwoIndex(t)
	const cache = 8192
	dims := func(max int64) []Dim {
		return []Dim{{"TI", max}, {"TJ", max}, {"TM", max}, {"TN", max}}
	}
	// Unknown-bounds search with a large surrogate.
	surrogate := int64(1 << 12)
	unk, err := Search(a, Options{
		Dims:       dims(512),
		CacheElems: cache,
		BaseEnv: expr.Env{"NI": surrogate, "NJ": surrogate,
			"NM": surrogate, "NN": surrogate},
		UnknownBounds: map[string]bool{"NI": true, "NJ": true, "NM": true, "NN": true},
		DivisorOf:     surrogate,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Known-bounds search at two large sizes.
	for _, n := range []int64{512, 1024} {
		known, err := Search(a, Options{
			Dims:       dims(min64(n, 512)),
			CacheElems: cache,
			BaseEnv:    expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n},
			DivisorOf:  n,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The unknown-bounds tiles must be near-optimal under known bounds:
		// within 10% of the known-bounds optimum.
		env := expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n}
		for k, v := range unk.Best.Tiles {
			env[k] = v
		}
		m, err := a.PredictTotal(env, cache)
		if err != nil {
			t.Fatal(err)
		}
		if known.Best.Misses > 0 && float64(m) > 1.10*float64(known.Best.Misses) {
			t.Errorf("N=%d: unknown-bounds tiles %v give %d misses, known-bounds best %v",
				n, unk.Best.Tiles, m, known.Best)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	if _, err := Search(a, Options{}); err == nil {
		t.Fatal("empty dims accepted")
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{Tiles: map[string]int64{"TI": 64, "TJ": 16}, Misses: 42}
	if got := c.String(); got != "(TI=64, TJ=16) misses=42" {
		t.Fatalf("got %q", got)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
