package tilesearch

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/testutil"
)

// TestSearchTreeEvalEquivalence: the compiled frame path and the legacy
// tree-walking Env path (Options.TreeEval) must produce byte-identical
// Results — best candidate, frontier, evaluation count, cache counters — on
// both fixtures, sequentially and with a worker pool. This is the A/B
// guarantee that lets BENCH_eval.json compare the two paths as equals.
func TestSearchTreeEvalEquivalence(t *testing.T) {
	fixtures := []struct {
		name string
		opt  Options
	}{
		{"matmul", Options{
			Dims:       matmulDims(64),
			CacheElems: 512,
			BaseEnv:    expr.Env{"N": 64},
			DivisorOf:  64,
		}},
		{"twoindex", Options{
			Dims:       []Dim{{"TI", 256}, {"TJ", 256}, {"TM", 256}, {"TN", 256}},
			CacheElems: 8192,
			BaseEnv:    expr.Env{"NI": 256, "NJ": 256, "NM": 256, "NN": 256},
			DivisorOf:  256,
		}},
		{"matmul-unknown-bounds", Options{
			Dims:          matmulDims(64),
			CacheElems:    512,
			BaseEnv:       expr.Env{"N": 4096},
			UnknownBounds: map[string]bool{"N": true},
		}},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			a := testutil.AnalyzedMatmul(t)
			if fx.name == "twoindex" {
				a = testutil.AnalyzedTwoIndex(t)
			}
			for _, j := range []int{1, 8} {
				frame := fx.opt
				frame.Parallelism = j
				got, err := Search(a, frame)
				if err != nil {
					t.Fatalf("frame path j=%d: %v", j, err)
				}
				tree := fx.opt
				tree.Parallelism = j
				tree.TreeEval = true
				want, err := Search(a, tree)
				if err != nil {
					t.Fatalf("tree path j=%d: %v", j, err)
				}
				if g, w := marshal(t, got), marshal(t, want); g != w {
					t.Errorf("j=%d: frame path result differs from tree path\nframe: %s\ntree:  %s", j, g, w)
				}
			}
		})
	}
}
