package trace

// Batched trace generation. Per-access emission (Emit) costs an indirect
// call per reference, which dominates trace generation once subscripts are
// precompiled; the block API amortizes it to one call per ~64K accesses and
// lets the innermost-loop walker advance addresses by precomputed strides.
// The buffers handed to an EmitBlock are reused between calls — consumers
// must fully process (or copy) them before returning.

// EmitBlock receives one batch of accesses: sites[i] is the static
// reference-site index of the access at addrs[i]. Both slices have the same
// length and are valid only for the duration of the call.
type EmitBlock func(sites []int32, addrs []int64)

// DefaultBlockSize is the batch granularity used by Run and the cmd tools:
// 64K accesses ≈ 768 KB of buffer, large enough to amortize the per-block
// call to nothing and small enough to stay cache- and allocation-friendly.
const DefaultBlockSize = 1 << 16

// blockRun carries the per-invocation state of one RunBlocks traversal: the
// fill buffers and, per leaf loop, the scratch slice of current reference
// addresses. Keeping all mutable state here (and in the vals slice) makes a
// compiled Program safe to run from several goroutines at once, which the
// sharded simulators rely on.
type blockRun struct {
	sites   []int32
	addrs   []int64
	n       int
	emit    EmitBlock
	scratch [][]int64 // per leafID: current address of each reference
}

func (b *blockRun) flush() {
	if b.n > 0 {
		b.emit(b.sites[:b.n], b.addrs[:b.n])
		b.n = 0
	}
}

// RunBlocks streams the full reference trace to emit in program order,
// batching accesses into blocks of at most blockSize. blockSize <= 0 selects
// DefaultBlockSize; it is clamped below to the largest single-iteration
// emission unit (so one innermost iteration never straddles a flush check)
// and above to the trace length (so short traces do not allocate full-size
// buffers).
func (p *Program) RunBlocks(blockSize int, emit EmitBlock) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize < p.minBlock {
		blockSize = p.minBlock
	}
	if int64(blockSize) > p.total {
		blockSize = int(p.total)
		if blockSize < p.minBlock {
			blockSize = p.minBlock
		}
		if blockSize < 1 {
			blockSize = 1
		}
	}
	b := &blockRun{
		sites: make([]int32, blockSize),
		addrs: make([]int64, blockSize),
		emit:  emit,
	}
	if p.nLeaves > 0 {
		b.scratch = make([][]int64, p.nLeaves)
		allocLeafScratch(p.root, b)
	}
	vals := make([]int64, p.nSlots)
	for _, n := range p.root {
		n.runBlocks(vals, b)
	}
	b.flush()
}

// allocLeafScratch sizes each leaf loop's current-address scratch slice.
func allocLeafScratch(nodes []cnode, b *blockRun) {
	for _, nd := range nodes {
		if l, ok := nd.(*cloop); ok {
			if l.leafID >= 0 {
				b.scratch[l.leafID] = make([]int64, len(l.leaf))
				continue
			}
			allocLeafScratch(l.body, b)
		}
	}
}

func (l *cloop) runBlocks(vals []int64, b *blockRun) {
	if l.leafID >= 0 {
		// Innermost fast path: evaluate each reference's loop-invariant
		// terms once, then advance by the precomputed stride per iteration.
		cur := b.scratch[l.leafID]
		for r := range l.leaf {
			lr := &l.leaf[r]
			a := lr.base
			for _, t := range lr.rest {
				a += t.stride * vals[t.slot]
			}
			cur[r] = a
		}
		nr := len(l.leaf)
		sites, addrs := b.sites, b.addrs
		for v := int64(0); v < l.trip; v++ {
			if b.n+nr > len(addrs) {
				b.flush()
			}
			n := b.n
			for r := range l.leaf {
				lr := &l.leaf[r]
				sites[n] = lr.site
				addrs[n] = cur[r]
				cur[r] += lr.step
				n++
			}
			b.n = n
		}
		return
	}
	for v := int64(0); v < l.trip; v++ {
		vals[l.slot] = v
		for _, c := range l.body {
			c.runBlocks(vals, b)
		}
	}
}

func (s *cstmt) runBlocks(vals []int64, b *blockRun) {
	if b.n+len(s.refs) > len(b.addrs) {
		b.flush()
	}
	n := b.n
	for i := range s.refs {
		r := &s.refs[i]
		addr := r.base
		for _, t := range r.terms {
			addr += t.stride * vals[t.slot]
		}
		b.sites[n] = int32(r.site)
		b.addrs[n] = addr
		n++
	}
	b.n = n
}

// BlockBuffer adapts a per-access Emit stream (e.g. ReadTrace replay) into
// EmitBlock batches. Call Flush after the stream ends to deliver the final
// partial block.
type BlockBuffer struct {
	sites []int32
	addrs []int64
	n     int
	sink  EmitBlock
}

// NewBlockBuffer creates a buffer of the given block size (<= 0 selects
// DefaultBlockSize) delivering to sink.
func NewBlockBuffer(blockSize int, sink EmitBlock) *BlockBuffer {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &BlockBuffer{
		sites: make([]int32, blockSize),
		addrs: make([]int64, blockSize),
		sink:  sink,
	}
}

// Emit buffers one access; it has the trace.Emit signature.
func (b *BlockBuffer) Emit(site int, addr int64) {
	if b.n == len(b.addrs) {
		b.Flush()
	}
	b.sites[b.n] = int32(site)
	b.addrs[b.n] = addr
	b.n++
}

// Flush delivers any buffered accesses to the sink.
func (b *BlockBuffer) Flush() {
	if b.n > 0 {
		b.sink(b.sites[:b.n], b.addrs[:b.n])
		b.n = 0
	}
}
