package trace

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/loopir"
)

// collectScalar materializes the reference stream through the original
// per-access walker.
func collectScalar(p *Program) (sites []int, addrs []int64) {
	p.RunScalar(func(site int, addr int64) {
		sites = append(sites, site)
		addrs = append(addrs, addr)
	})
	return sites, addrs
}

// collectBlocks materializes the stream through RunBlocks at a given block
// size.
func collectBlocks(p *Program, blockSize int) (sites []int, addrs []int64) {
	p.RunBlocks(blockSize, func(bs []int32, ba []int64) {
		for i := range ba {
			sites = append(sites, int(bs[i]))
			addrs = append(addrs, ba[i])
		}
	})
	return sites, addrs
}

// blockFixtures builds a spread of nest shapes: vector, perfect 3-deep,
// tiled, and imperfect (statement beside a loop, exercising the non-leaf
// statement path).
func blockFixtures(t *testing.T) []*Program {
	t.Helper()
	var progs []*Program
	compile := func(nest *loopir.Nest, env expr.Env) {
		p, err := Compile(nest, env)
		if err != nil {
			t.Fatalf("%s: %v", nest.Name, err)
		}
		progs = append(progs, p)
	}

	compile(vecSum(t), expr.Env{"N": 7})

	n := expr.Var("N")
	mm, err := loopir.BuildPerfect(loopir.PerfectNestSpec{
		Name: "mm",
		Arrays: []*loopir.Array{
			{Name: "A", Dims: []*expr.Expr{n, n}},
			{Name: "B", Dims: []*expr.Expr{n, n}},
			{Name: "C", Dims: []*expr.Expr{n, n}},
		},
		Indices: []string{"i", "j", "k"},
		Trips:   []*expr.Expr{n, n, n},
		Stmt: &loopir.Stmt{Label: "S1", Refs: []loopir.Ref{
			{Array: "A", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("j")}},
			{Array: "B", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("j"), loopir.Idx("k")}},
			{Array: "C", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("k")}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	compile(mm, expr.Env{"N": 5})

	ti := expr.Var("TI")
	tiled, err := loopir.NewNest("tiled",
		[]*loopir.Array{{Name: "X", Dims: []*expr.Expr{expr.Var("N")}}},
		[]loopir.Node{
			&loopir.Loop{Index: "iT", Trip: expr.CeilDiv(expr.Var("N"), ti), Body: []loopir.Node{
				&loopir.Loop{Index: "iI", Trip: ti, Body: []loopir.Node{
					&loopir.Stmt{Label: "S1", Refs: []loopir.Ref{
						{Array: "X", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.TilePair("iT", ti, "iI")}},
					}},
				}},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	compile(tiled, expr.Env{"N": 12, "TI": 4})

	c := expr.Const(3)
	imp, err := loopir.NewNest("imp",
		[]*loopir.Array{
			{Name: "X", Dims: []*expr.Expr{c}},
			{Name: "Y", Dims: []*expr.Expr{c, c}},
		},
		[]loopir.Node{
			&loopir.Loop{Index: "i", Trip: c, Body: []loopir.Node{
				&loopir.Stmt{Label: "S1", Refs: []loopir.Ref{
					{Array: "X", Mode: loopir.Write, Subs: []loopir.Subscript{loopir.Idx("i")}},
				}},
				&loopir.Loop{Index: "j", Trip: c, Body: []loopir.Node{
					&loopir.Stmt{Label: "S2", Refs: []loopir.Ref{
						{Array: "Y", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("j")}},
						{Array: "X", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("j")}},
					}},
				}},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	compile(imp, expr.Env{})
	return progs
}

// TestRunBlocksMatchesScalar pins the batched walker to the per-access
// reference walker: identical (site, addr) streams at every block size,
// including sizes that force flushes mid-loop.
func TestRunBlocksMatchesScalar(t *testing.T) {
	for _, p := range blockFixtures(t) {
		wantSites, wantAddrs := collectScalar(p)
		for _, bs := range []int{0, 1, 2, 3, 7, 64, DefaultBlockSize} {
			gotSites, gotAddrs := collectBlocks(p, bs)
			if len(gotAddrs) != len(wantAddrs) {
				t.Fatalf("%s block %d: %d accesses want %d",
					p.Nest.Name, bs, len(gotAddrs), len(wantAddrs))
			}
			for i := range wantAddrs {
				if gotSites[i] != wantSites[i] || gotAddrs[i] != wantAddrs[i] {
					t.Fatalf("%s block %d access %d: (site %d, addr %d) want (site %d, addr %d)",
						p.Nest.Name, bs, i, gotSites[i], gotAddrs[i], wantSites[i], wantAddrs[i])
				}
			}
		}
		// Run (the adapter) must match too.
		var adSites []int
		var adAddrs []int64
		p.Run(func(site int, addr int64) {
			adSites = append(adSites, site)
			adAddrs = append(adAddrs, addr)
		})
		for i := range wantAddrs {
			if adSites[i] != wantSites[i] || adAddrs[i] != wantAddrs[i] {
				t.Fatalf("%s: Run adapter diverges at access %d", p.Nest.Name, i)
			}
		}
	}
}

// TestRunBlocksLength checks the compile-time trace length against the
// symbolic Length and the actual stream.
func TestRunBlocksLength(t *testing.T) {
	for _, p := range blockFixtures(t) {
		want, err := p.Length()
		if err != nil {
			t.Fatal(err)
		}
		if p.total != want {
			t.Fatalf("%s: compiled total %d, symbolic length %d", p.Nest.Name, p.total, want)
		}
		_, addrs := collectBlocks(p, 16)
		if int64(len(addrs)) != want {
			t.Fatalf("%s: stream length %d want %d", p.Nest.Name, len(addrs), want)
		}
	}
}

// TestBlockBuffer checks the Emit→EmitBlock adapter, including the final
// partial flush.
func TestBlockBuffer(t *testing.T) {
	var got []int64
	var blocks int
	bb := NewBlockBuffer(4, func(sites []int32, addrs []int64) {
		blocks++
		for i := range addrs {
			if sites[i] != 1 {
				t.Fatalf("site %d want 1", sites[i])
			}
			got = append(got, addrs[i])
		}
	})
	for a := int64(0); a < 10; a++ {
		bb.Emit(1, a)
	}
	bb.Flush()
	bb.Flush() // idempotent on empty
	if len(got) != 10 || blocks != 3 {
		t.Fatalf("got %d accesses in %d blocks, want 10 in 3", len(got), blocks)
	}
	for i, a := range got {
		if a != int64(i) {
			t.Fatalf("addr[%d] = %d", i, a)
		}
	}
}

// TestCheckBoundsLastArray ensures a violation confined to the array with
// the highest base address (last in the sorted layout) is still reported —
// the regression the O(1) per-site range precompute must not introduce.
func TestCheckBoundsLastArray(t *testing.T) {
	// Arrays A, B, Z: A and B are indexed in range, Z[i] overflows (extent
	// 2, loop runs to 4). Z sorts last, so its base is the highest.
	n := expr.Var("N")
	nest, err := loopir.NewNest("lastbad",
		[]*loopir.Array{
			{Name: "A", Dims: []*expr.Expr{n}},
			{Name: "B", Dims: []*expr.Expr{n}},
			{Name: "Z", Dims: []*expr.Expr{expr.Var("M")}},
		},
		[]loopir.Node{
			&loopir.Loop{Index: "i", Trip: n, Body: []loopir.Node{
				&loopir.Stmt{Label: "S1", Refs: []loopir.Ref{
					{Array: "A", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i")}},
					{Array: "B", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i")}},
					{Array: "Z", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx("i")}},
				}},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(nest, expr.Env{"N": 4, "M": 2})
	if err != nil {
		t.Fatal(err)
	}
	err = p.CheckBounds()
	if err == nil {
		t.Fatal("expected bounds violation in last array")
	}
	if !strings.Contains(err.Error(), "of Z") {
		t.Fatalf("violation does not name array Z: %v", err)
	}
}
