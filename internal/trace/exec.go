package trace

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/loopir"
)

// Executor runs a nest numerically. The statement semantics are the
// multiply-accumulate form of all TCE-generated code:
//
//   - a statement whose last written/updated reference is W and whose read
//     references are R1..Rk executes W (+)= R1·…·Rk (write assigns, update
//     accumulates);
//   - a statement with only a written reference zeroes it.
//
// This lets tests verify that generated programs (tiled kernels, fused
// chains) compute the same tensors as straightforward reference code, not
// merely touch the same addresses.
type Executor struct {
	prog *Program
	mem  []float64
	// per-site dims for flat addressing are already encoded in the
	// compiled program; the executor re-derives per-ref roles.
	roles []stmtRole
}

type stmtRole struct {
	// index of the target ref within the statement (-1 = none), whether it
	// accumulates, and the indices of the factor refs.
	target  int
	accum   bool
	factors []int
}

// NewExecutor compiles the nest under env and allocates a zeroed memory
// image covering every array.
func NewExecutor(nest *loopir.Nest, env expr.Env) (*Executor, error) {
	p, err := Compile(nest, env)
	if err != nil {
		return nil, err
	}
	e := &Executor{prog: p, mem: make([]float64, p.Size)}
	for _, s := range nest.Stmts() {
		role := stmtRole{target: -1}
		for i, r := range s.Refs {
			switch r.Mode {
			case loopir.Write, loopir.Update:
				if role.target >= 0 {
					return nil, fmt.Errorf("trace: statement %s has two written references", s.Label)
				}
				role.target = i
				role.accum = r.Mode == loopir.Update
			default:
				role.factors = append(role.factors, i)
			}
		}
		if role.target < 0 {
			return nil, fmt.Errorf("trace: statement %s writes nothing", s.Label)
		}
		e.roles = append(e.roles, role)
	}
	return e, nil
}

// SetArray copies data into the array's memory image. The slice length must
// equal the array's element count under the executor's environment.
func (e *Executor) SetArray(name string, data []float64) error {
	base, n, err := e.arrayRange(name)
	if err != nil {
		return err
	}
	if int64(len(data)) != n {
		return fmt.Errorf("trace: array %s has %d elements, got %d", name, n, len(data))
	}
	copy(e.mem[base:base+n], data)
	return nil
}

// Array returns a copy of the array's current contents.
func (e *Executor) Array(name string) ([]float64, error) {
	base, n, err := e.arrayRange(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	copy(out, e.mem[base:base+n])
	return out, nil
}

func (e *Executor) arrayRange(name string) (base, n int64, err error) {
	b, ok := e.prog.Bases[name]
	if !ok {
		return 0, 0, fmt.Errorf("trace: unknown array %s", name)
	}
	arr := e.prog.Nest.Arrays[name]
	n, err = arr.Elements().Eval(e.prog.Env)
	if err != nil {
		return 0, 0, err
	}
	return b, n, nil
}

// Run executes the program once. Statement executions are driven by the
// same compiled tree as trace generation, so the numeric semantics and the
// reference trace are guaranteed to correspond access for access.
func (e *Executor) Run() {
	// Reuse the trace machinery: accesses of one statement arrive in ref
	// order; gather them per statement execution.
	stmtOf := make([]int, len(e.prog.Sites))
	refIdx := make([]int, len(e.prog.Sites))
	for i, s := range e.prog.Sites {
		stmtOf[i] = s.Stmt.ID
		refIdx[i] = s.RefIdx
	}
	// Buffer of addresses for the statement currently executing.
	var curStmt = -1
	addrs := map[int]int64{}
	flush := func() {
		if curStmt < 0 {
			return
		}
		role := e.roles[curStmt]
		prod := 1.0
		for _, f := range role.factors {
			prod *= e.mem[addrs[f]]
		}
		t := addrs[role.target]
		if len(role.factors) == 0 {
			prod = 0
		}
		if role.accum {
			e.mem[t] += prod
		} else {
			e.mem[t] = prod
		}
		curStmt = -1
	}
	e.prog.Run(func(site int, addr int64) {
		s := stmtOf[site]
		if refIdx[site] == 0 {
			flush()
			curStmt = s
		}
		addrs[refIdx[site]] = addr
	})
	flush()
}
