package trace

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/loopir"
)

// TestExecutorMatmul: executing the matmul IR must equal the native kernel.
func TestExecutorMatmul(t *testing.T) {
	n := expr.Var("N")
	stmt := &loopir.Stmt{
		Label: "S1",
		Refs: []loopir.Ref{
			{Array: "A", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("j")}},
			{Array: "B", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("j"), loopir.Idx("k")}},
			{Array: "C", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("k")}},
		},
	}
	nest, err := loopir.BuildPerfect(loopir.PerfectNestSpec{
		Name: "matmul",
		Arrays: []*loopir.Array{
			{Name: "A", Dims: []*expr.Expr{n, n}},
			{Name: "B", Dims: []*expr.Expr{n, n}},
			{Name: "C", Dims: []*expr.Expr{n, n}},
		},
		Indices: []string{"i", "j", "k"},
		Trips:   []*expr.Expr{n, n, n},
		Stmt:    stmt,
	})
	if err != nil {
		t.Fatal(err)
	}
	const N = 12
	ex, err := NewExecutor(nest, expr.Env{"N": N})
	if err != nil {
		t.Fatal(err)
	}
	a := kernels.NewMatrix(N, N)
	b := kernels.NewMatrix(N, N)
	a.FillSequential(0.25)
	b.FillSequential(0.5)
	if err := ex.SetArray("A", a.Data); err != nil {
		t.Fatal(err)
	}
	if err := ex.SetArray("B", b.Data); err != nil {
		t.Fatal(err)
	}
	ex.Run()
	got, err := ex.Array("C")
	if err != nil {
		t.Fatal(err)
	}
	want := kernels.NewMatrix(N, N)
	if err := kernels.MatmulNaive(a, b, want); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		d := got[i] - want.Data[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-9 {
			t.Fatalf("C[%d] = %g want %g", i, got[i], want.Data[i])
		}
	}
}

// TestExecutorTiledTwoIndex: the Fig. 6 IR computes the same B as the
// native fused kernel, including the zero-initializations of B and the
// tile buffer.
func TestExecutorTiledTwoIndex(t *testing.T) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	const N = 16
	env, err := kernels.TwoIndexEnv(N, 4, 4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	a := kernels.NewMatrix(N, N)
	c1 := kernels.NewMatrix(N, N)
	c2 := kernels.NewMatrix(N, N)
	a.FillSequential(0.1)
	c1.FillSequential(0.2)
	c2.FillSequential(0.3)
	for name, m := range map[string]*kernels.Matrix{"A": a, "C1": c1, "C2": c2} {
		if err := ex.SetArray(name, m.Data); err != nil {
			t.Fatal(err)
		}
	}
	ex.Run()
	got, err := ex.Array("B")
	if err != nil {
		t.Fatal(err)
	}
	want, err := kernels.TwoIndexFused(a, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		d := got[i] - want.Data[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-6 {
			t.Fatalf("B[%d] = %g want %g", i, got[i], want.Data[i])
		}
	}
}

func TestExecutorErrors(t *testing.T) {
	n := expr.Var("N")
	// Statement with no written reference.
	nest, err := loopir.NewNest("readonly",
		[]*loopir.Array{{Name: "X", Dims: []*expr.Expr{n}}},
		[]loopir.Node{&loopir.Loop{Index: "i", Trip: n, Body: []loopir.Node{
			&loopir.Stmt{Refs: []loopir.Ref{
				{Array: "X", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i")}},
			}},
		}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewExecutor(nest, expr.Env{"N": 4}); err == nil {
		t.Fatal("read-only statement accepted")
	}
	// Valid nest: bad array operations.
	nest2, err := loopir.NewNest("w",
		[]*loopir.Array{{Name: "X", Dims: []*expr.Expr{n}}},
		[]loopir.Node{&loopir.Loop{Index: "i", Trip: n, Body: []loopir.Node{
			&loopir.Stmt{Refs: []loopir.Ref{
				{Array: "X", Mode: loopir.Write, Subs: []loopir.Subscript{loopir.Idx("i")}},
			}},
		}}})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(nest2, expr.Env{"N": 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.SetArray("X", make([]float64, 3)); err == nil {
		t.Fatal("wrong length accepted")
	}
	if err := ex.SetArray("Q", make([]float64, 4)); err == nil {
		t.Fatal("unknown array accepted")
	}
	if _, err := ex.Array("Q"); err == nil {
		t.Fatal("unknown array read accepted")
	}
	// Write-only statement zeroes the array.
	if err := ex.SetArray("X", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	ex.Run()
	x, _ := ex.Array("X")
	for i, v := range x {
		if v != 0 {
			t.Fatalf("X[%d] = %g after zeroing statement", i, v)
		}
	}
}
