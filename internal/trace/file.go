package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format. Traces can be written once and replayed through any
// of the simulators (or external tools) without regenerating them:
//
//	header:  magic "RTRC" | version u8 | nSites uvarint | addrSpace uvarint
//	records: site uvarint | addrDelta zigzag-varint   (delta vs previous addr)
//	footer:  site == nSites sentinel record terminates the stream
//
// Delta encoding exploits the spatial regularity of loop traces; typical
// records are 2–3 bytes.

const traceMagic = "RTRC"
const traceVersion = 1

// Writer streams a trace to an io.Writer in the binary format.
type Writer struct {
	w        *bufio.Writer
	nSites   int
	prevAddr int64
	records  int64
	buf      [2 * binary.MaxVarintLen64]byte
	err      error
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer, nSites int, addrSpace int64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return nil, err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(nSites))
	if _, err := bw.Write(buf[:n]); err != nil {
		return nil, err
	}
	n = binary.PutUvarint(buf[:], uint64(addrSpace))
	if _, err := bw.Write(buf[:n]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, nSites: nSites}, nil
}

// Emit records one access; it has the trace.Emit signature so it can be
// passed directly to Program.Run.
func (t *Writer) Emit(site int, addr int64) {
	if t.err != nil {
		return
	}
	if site < 0 || site >= t.nSites {
		t.err = fmt.Errorf("trace: site %d out of range [0,%d)", site, t.nSites)
		return
	}
	n := binary.PutUvarint(t.buf[:], uint64(site))
	n += binary.PutVarint(t.buf[n:], addr-t.prevAddr)
	if _, err := t.w.Write(t.buf[:n]); err != nil {
		t.err = err
		return
	}
	t.prevAddr = addr
	t.records++
}

// Close writes the terminating sentinel and flushes. It returns the first
// error encountered during writing.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	n := binary.PutUvarint(t.buf[:], uint64(t.nSites))
	if _, err := t.w.Write(t.buf[:n]); err != nil {
		return err
	}
	return t.w.Flush()
}

// Records returns the number of accesses written.
func (t *Writer) Records() int64 { return t.records }

// Header describes a stored trace.
type Header struct {
	NSites    int
	AddrSpace int64
}

// ReadTrace replays a stored trace, invoking emit per access, and returns
// the header and the record count.
func ReadTrace(r io.Reader, emit Emit) (Header, int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var h Header
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return h, 0, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return h, 0, fmt.Errorf("trace: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return h, 0, err
	}
	if ver != traceVersion {
		return h, 0, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nSites, err := binary.ReadUvarint(br)
	if err != nil {
		return h, 0, err
	}
	addrSpace, err := binary.ReadUvarint(br)
	if err != nil {
		return h, 0, err
	}
	h.NSites = int(nSites)
	h.AddrSpace = int64(addrSpace)

	var count int64
	var prevAddr int64
	for {
		site, err := binary.ReadUvarint(br)
		if err != nil {
			return h, count, fmt.Errorf("trace: truncated stream after %d records: %w", count, err)
		}
		if site == nSites {
			return h, count, nil // sentinel
		}
		if site > nSites {
			return h, count, fmt.Errorf("trace: corrupt site %d", site)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return h, count, fmt.Errorf("trace: truncated record %d: %w", count, err)
		}
		prevAddr += delta
		if prevAddr < 0 || prevAddr >= h.AddrSpace {
			return h, count, fmt.Errorf("trace: corrupt address %d at record %d", prevAddr, count)
		}
		emit(int(site), prevAddr)
		count++
	}
}
