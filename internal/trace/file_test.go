package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/kernels"
)

func TestTraceFileRoundTrip(t *testing.T) {
	nest, err := kernels.TiledMatmul()
	if err != nil {
		t.Fatal(err)
	}
	env, err := kernels.MatmulEnv(16, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	var wantSites []int
	var wantAddrs []int64
	p.Run(func(s int, a int64) {
		wantSites = append(wantSites, s)
		wantAddrs = append(wantAddrs, a)
	})

	var buf bytes.Buffer
	w, err := NewWriter(&buf, len(p.Sites), p.Size)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(w.Emit)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != int64(len(wantAddrs)) {
		t.Fatalf("wrote %d records, want %d", w.Records(), len(wantAddrs))
	}
	// Delta encoding should compress well below 9 bytes/record.
	if avg := float64(buf.Len()) / float64(len(wantAddrs)); avg > 4 {
		t.Errorf("average %.1f bytes/record — delta encoding ineffective", avg)
	}

	var gotSites []int
	var gotAddrs []int64
	h, n, err := ReadTrace(&buf, func(s int, a int64) {
		gotSites = append(gotSites, s)
		gotAddrs = append(gotAddrs, a)
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.NSites != len(p.Sites) || h.AddrSpace != p.Size {
		t.Fatalf("header %+v", h)
	}
	if n != int64(len(wantAddrs)) || len(gotAddrs) != len(wantAddrs) {
		t.Fatalf("read %d records, want %d", n, len(wantAddrs))
	}
	for i := range wantAddrs {
		if gotAddrs[i] != wantAddrs[i] || gotSites[i] != wantSites[i] {
			t.Fatalf("record %d: (%d,%d) want (%d,%d)",
				i, gotSites[i], gotAddrs[i], wantSites[i], wantAddrs[i])
		}
	}
}

func TestTraceFileErrors(t *testing.T) {
	// Bad magic.
	if _, _, err := ReadTrace(strings.NewReader("NOPE"), func(int, int64) {}); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream (no sentinel).
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(0, 5)
	_ = w.w.Flush() // flush without sentinel
	if _, _, err := ReadTrace(&buf, func(int, int64) {}); err == nil {
		t.Error("truncated stream accepted")
	}
	// Out-of-range site on write.
	var buf2 bytes.Buffer
	w2, err := NewWriter(&buf2, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	w2.Emit(5, 0)
	if err := w2.Close(); err == nil {
		t.Error("out-of-range site accepted")
	}
	// Corrupt address range.
	var buf3 bytes.Buffer
	w3, _ := NewWriter(&buf3, 1, 4)
	w3.Emit(0, 3)
	_ = w3.Close()
	data := buf3.Bytes()
	// Rewrite the delta byte to jump out of range: find last records; easier
	// to just write a fresh trace claiming a tiny address space.
	var buf4 bytes.Buffer
	w4, _ := NewWriter(&buf4, 1, 2)
	w4.Emit(0, 1)
	w4.prevAddr = 0 // lie about the delta base so the next record overflows
	w4.Emit(0, 5)
	_ = w4.Close()
	if _, _, err := ReadTrace(&buf4, func(int, int64) {}); err == nil {
		t.Error("out-of-range address accepted on read")
	}
	_ = data
}

func TestTraceFileEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	h, n, err := ReadTrace(&buf, func(int, int64) { t.Fatal("no records expected") })
	if err != nil || n != 0 || h.NSites != 3 {
		t.Fatalf("h=%+v n=%d err=%v", h, n, err)
	}
}

func TestTraceFileLargeAddrJumps(t *testing.T) {
	var buf bytes.Buffer
	const space = int64(1) << 40
	w, err := NewWriter(&buf, 1, space)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []int64{0, space - 1, 1, space / 2}
	for _, a := range addrs {
		w.Emit(0, a)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []int64
	if _, _, err := ReadTrace(&buf, func(_ int, a int64) { got = append(got, a) }); err != nil {
		t.Fatal(err)
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("addr %d: %d want %d", i, got[i], addrs[i])
		}
	}
}
