// Package trace turns a loopir.Nest plus a concrete environment into the
// exact sequence of memory references the program performs. It is the ground
// truth against which the analytical cache-miss model is validated: the
// stream it produces feeds internal/cachesim, playing the role SimpleScalar's
// sim-cache plays in the paper.
//
// Addresses are element-granular: every array element occupies one address
// unit, arrays are laid out row-major and placed consecutively in a single
// address space. The cache simulator applies line-size scaling if needed.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/loopir"
)

// Emit receives one access: the index of the static reference site (into
// Program.Sites) and the element address.
type Emit func(site int, addr int64)

// Program is a nest compiled against a concrete environment, ready to
// generate its reference trace.
type Program struct {
	Nest  *loopir.Nest
	Env   expr.Env
	Sites []loopir.RefSite

	// Base address of each array and total address-space size in elements.
	Bases map[string]int64
	Size  int64

	root    []cnode
	nSlots  int
	checked bool
}

type cnode interface{ run(vals []int64, emit Emit) }

type cloop struct {
	trip int64
	slot int
	body []cnode
}

type cref struct {
	site  int
	base  int64
	terms []cterm // addr = base + sum(stride*vals[slot])
}

type cterm struct {
	slot   int
	stride int64
}

type cstmt struct {
	refs []cref
}

func (l *cloop) run(vals []int64, emit Emit) {
	for v := int64(0); v < l.trip; v++ {
		vals[l.slot] = v
		for _, b := range l.body {
			b.run(vals, emit)
		}
	}
}

func (s *cstmt) run(vals []int64, emit Emit) {
	for i := range s.refs {
		r := &s.refs[i]
		addr := r.base
		for _, t := range r.terms {
			addr += t.stride * vals[t.slot]
		}
		emit(r.site, addr)
	}
}

// Compile prepares the nest for execution under env. It validates the
// environment, lays out arrays (sorted by name for determinism), and
// pre-resolves every subscript into a flat base+strides form.
func Compile(nest *loopir.Nest, env expr.Env) (*Program, error) {
	if err := nest.ValidateEnv(env); err != nil {
		return nil, err
	}
	p := &Program{Nest: nest, Env: env, Sites: nest.Sites(), Bases: map[string]int64{}}

	names := make([]string, 0, len(nest.Arrays))
	for name := range nest.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := nest.Arrays[name]
		p.Bases[name] = p.Size
		n, err := a.Elements().Eval(env)
		if err != nil {
			return nil, err
		}
		p.Size += n
	}

	siteIdx := map[string]int{}
	for i, s := range p.Sites {
		siteIdx[s.Key()] = i
	}

	// Loop index names may repeat across sibling subtrees, so slots are
	// allocated per loop node and name→slot bindings are lexically scoped.
	nSlots := 0
	var compile func(nodes []loopir.Node, scope map[string]int) ([]cnode, error)
	compile = func(nodes []loopir.Node, scope map[string]int) ([]cnode, error) {
		var out []cnode
		for _, nd := range nodes {
			switch v := nd.(type) {
			case *loopir.Loop:
				trip, err := v.Trip.Eval(env)
				if err != nil {
					return nil, err
				}
				slot := nSlots
				nSlots++
				inner := make(map[string]int, len(scope)+1)
				for k, s := range scope {
					inner[k] = s
				}
				inner[v.Index] = slot
				body, err := compile(v.Body, inner)
				if err != nil {
					return nil, err
				}
				out = append(out, &cloop{trip: trip, slot: slot, body: body})
			case *loopir.Stmt:
				cs := &cstmt{}
				for ri := range v.Refs {
					r := &v.Refs[ri]
					arr := nest.Arrays[r.Array]
					// Row-major dimension strides.
					dimStride := make([]int64, len(arr.Dims))
					acc := int64(1)
					for d := len(arr.Dims) - 1; d >= 0; d-- {
						dimStride[d] = acc
						ext, err := arr.Dims[d].Eval(env)
						if err != nil {
							return nil, err
						}
						acc *= ext
					}
					c := cref{
						site: siteIdx[loopir.RefSite{Stmt: v, RefIdx: ri}.Key()],
						base: p.Bases[r.Array],
					}
					for d, sub := range r.Subs {
						for _, term := range sub.Terms {
							stride := int64(1)
							if term.Stride != nil {
								sv, err := term.Stride.Eval(env)
								if err != nil {
									return nil, err
								}
								stride = sv
							}
							c.terms = append(c.terms, cterm{
								slot:   scope[term.Index],
								stride: stride * dimStride[d],
							})
						}
					}
					cs.refs = append(cs.refs, c)
				}
				out = append(out, cs)
			}
		}
		return out, nil
	}
	root, err := compile(nest.Root, map[string]int{})
	if err != nil {
		return nil, err
	}
	p.root = root
	p.nSlots = nSlots
	return p, nil
}

// Run streams the full reference trace to emit, in program order.
func (p *Program) Run(emit Emit) {
	vals := make([]int64, p.nSlots)
	for _, n := range p.root {
		n.run(vals, emit)
	}
}

// CheckBounds runs the trace once, verifying that every address falls within
// the address range of its array. It returns the first violation found.
// Intended for tests and for validating user-supplied nests once before long
// simulations.
func (p *Program) CheckBounds() error {
	// Precompute (base, limit, name) sorted by base for address lookup.
	type rangeInfo struct {
		base, limit int64
		name        string
	}
	var ranges []rangeInfo
	for name, base := range p.Bases {
		n, err := p.Nest.Arrays[name].Elements().Eval(p.Env)
		if err != nil {
			return err
		}
		ranges = append(ranges, rangeInfo{base, base + n, name})
	}
	var violation error
	p.Run(func(site int, addr int64) {
		if violation != nil {
			return
		}
		name := p.Sites[site].Ref().Array
		for _, r := range ranges {
			if r.name == name {
				if addr < r.base || addr >= r.limit {
					violation = fmt.Errorf("trace: %s address %d outside [%d,%d) of %s",
						p.Sites[site].Key(), addr, r.base, r.limit, name)
				}
				return
			}
		}
		violation = fmt.Errorf("trace: site %d references unknown array %s", site, name)
	})
	return violation
}

// Length returns the total number of accesses the trace will produce,
// computed symbolically (without running the trace).
func (p *Program) Length() (int64, error) {
	total := int64(0)
	for _, s := range p.Nest.Stmts() {
		iters := int64(1)
		for _, l := range p.Nest.Enclosing(s) {
			t, err := l.Trip.Eval(p.Env)
			if err != nil {
				return 0, err
			}
			iters *= t
		}
		total += iters * int64(len(s.Refs))
	}
	return total, nil
}

// Collect materializes the whole trace as (site, addr) pairs. Only suitable
// for small programs (tests); long traces should stream through Run.
func (p *Program) Collect() (sites []int, addrs []int64) {
	n, err := p.Length()
	if err == nil && n < 1<<24 {
		sites = make([]int, 0, n)
		addrs = make([]int64, 0, n)
	}
	p.Run(func(site int, addr int64) {
		sites = append(sites, site)
		addrs = append(addrs, addr)
	})
	return sites, addrs
}
