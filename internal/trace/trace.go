// Package trace turns a loopir.Nest plus a concrete environment into the
// exact sequence of memory references the program performs. It is the ground
// truth against which the analytical cache-miss model is validated: the
// stream it produces feeds internal/cachesim, playing the role SimpleScalar's
// sim-cache plays in the paper.
//
// Addresses are element-granular: every array element occupies one address
// unit, arrays are laid out row-major and placed consecutively in a single
// address space. The cache simulator applies line-size scaling if needed.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/loopir"
)

// Emit receives one access: the index of the static reference site (into
// Program.Sites) and the element address.
type Emit func(site int, addr int64)

// Program is a nest compiled against a concrete environment, ready to
// generate its reference trace.
type Program struct {
	Nest  *loopir.Nest
	Env   expr.Env
	Sites []loopir.RefSite

	// Base address of each array and total address-space size in elements.
	Bases map[string]int64
	Size  int64

	root     []cnode
	nSlots   int
	nLeaves  int   // leaf loops carrying the stride fast path
	total    int64 // trace length, computed at compile time
	minBlock int   // largest per-iteration emission unit; RunBlocks floor
	checked  bool
}

type cnode interface {
	run(vals []int64, emit Emit)
	runBlocks(vals []int64, b *blockRun)
}

type cloop struct {
	trip int64
	slot int
	body []cnode
	// Innermost-loop fast path: when the body consists solely of statements,
	// the flattened reference list is precompiled here and runBlocks advances
	// each reference's address by a per-iteration stride instead of
	// re-evaluating the subscript terms. leafID indexes the per-run scratch
	// array holding the current addresses. leaf == nil means general path.
	leaf   []leafRef
	leafID int
}

// leafRef is one reference of an innermost loop, split into the terms that
// stay constant across the loop (rest, evaluated once on entry) and the
// accumulated stride of the loop's own index (step, added per iteration).
type leafRef struct {
	site int32
	step int64
	base int64
	rest []cterm
}

type cref struct {
	site  int
	base  int64
	terms []cterm // addr = base + sum(stride*vals[slot])
}

type cterm struct {
	slot   int
	stride int64
}

type cstmt struct {
	refs []cref
}

func (l *cloop) run(vals []int64, emit Emit) {
	for v := int64(0); v < l.trip; v++ {
		vals[l.slot] = v
		for _, b := range l.body {
			b.run(vals, emit)
		}
	}
}

func (s *cstmt) run(vals []int64, emit Emit) {
	for i := range s.refs {
		r := &s.refs[i]
		addr := r.base
		for _, t := range r.terms {
			addr += t.stride * vals[t.slot]
		}
		emit(r.site, addr)
	}
}

// Compile prepares the nest for execution under env. It validates the
// environment, lays out arrays (sorted by name for determinism), and
// pre-resolves every subscript into a flat base+strides form.
func Compile(nest *loopir.Nest, env expr.Env) (*Program, error) {
	if err := nest.ValidateEnv(env); err != nil {
		return nil, err
	}
	p := &Program{Nest: nest, Env: env, Sites: nest.Sites(), Bases: map[string]int64{}}

	names := make([]string, 0, len(nest.Arrays))
	for name := range nest.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := nest.Arrays[name]
		p.Bases[name] = p.Size
		n, err := a.Elements().Eval(env)
		if err != nil {
			return nil, err
		}
		p.Size += n
	}

	siteIdx := map[string]int{}
	for i, s := range p.Sites {
		siteIdx[s.Key()] = i
	}

	// Loop index names may repeat across sibling subtrees, so slots are
	// allocated per loop node and name→slot bindings are lexically scoped.
	nSlots := 0
	var compile func(nodes []loopir.Node, scope map[string]int) ([]cnode, error)
	compile = func(nodes []loopir.Node, scope map[string]int) ([]cnode, error) {
		var out []cnode
		for _, nd := range nodes {
			switch v := nd.(type) {
			case *loopir.Loop:
				trip, err := v.Trip.Eval(env)
				if err != nil {
					return nil, err
				}
				slot := nSlots
				nSlots++
				inner := make(map[string]int, len(scope)+1)
				for k, s := range scope {
					inner[k] = s
				}
				inner[v.Index] = slot
				body, err := compile(v.Body, inner)
				if err != nil {
					return nil, err
				}
				out = append(out, &cloop{trip: trip, slot: slot, body: body})
			case *loopir.Stmt:
				cs := &cstmt{}
				for ri := range v.Refs {
					r := &v.Refs[ri]
					arr := nest.Arrays[r.Array]
					// Row-major dimension strides.
					dimStride := make([]int64, len(arr.Dims))
					acc := int64(1)
					for d := len(arr.Dims) - 1; d >= 0; d-- {
						dimStride[d] = acc
						ext, err := arr.Dims[d].Eval(env)
						if err != nil {
							return nil, err
						}
						acc *= ext
					}
					c := cref{
						site: siteIdx[loopir.RefSite{Stmt: v, RefIdx: ri}.Key()],
						base: p.Bases[r.Array],
					}
					for d, sub := range r.Subs {
						for _, term := range sub.Terms {
							stride := int64(1)
							if term.Stride != nil {
								sv, err := term.Stride.Eval(env)
								if err != nil {
									return nil, err
								}
								stride = sv
							}
							c.terms = append(c.terms, cterm{
								slot:   scope[term.Index],
								stride: stride * dimStride[d],
							})
						}
					}
					cs.refs = append(cs.refs, c)
				}
				out = append(out, cs)
			}
		}
		return out, nil
	}
	root, err := compile(nest.Root, map[string]int{})
	if err != nil {
		return nil, err
	}
	p.root = root
	p.nSlots = nSlots
	p.annotate(root)
	p.total = countAccesses(root)
	return p, nil
}

// annotate walks the compiled tree, marking innermost loops (bodies made
// only of statements) with their flattened stride-form reference lists and
// recording the largest indivisible emission unit for RunBlocks.
func (p *Program) annotate(nodes []cnode) {
	for _, nd := range nodes {
		switch v := nd.(type) {
		case *cloop:
			v.leafID = -1
			if refs, unit, ok := leafRefsOf(v); ok {
				v.leaf = refs
				v.leafID = p.nLeaves
				p.nLeaves++
				if unit > p.minBlock {
					p.minBlock = unit
				}
				continue
			}
			p.annotate(v.body)
		case *cstmt:
			if len(v.refs) > p.minBlock {
				p.minBlock = len(v.refs)
			}
		}
	}
}

// leafRefsOf flattens a loop body into stride form when every child is a
// statement. The returned unit is the number of accesses one iteration
// emits, which RunBlocks must be able to buffer contiguously.
func leafRefsOf(l *cloop) ([]leafRef, int, bool) {
	var refs []leafRef
	for _, nd := range l.body {
		s, ok := nd.(*cstmt)
		if !ok {
			return nil, 0, false
		}
		for i := range s.refs {
			r := &s.refs[i]
			lr := leafRef{site: int32(r.site), base: r.base}
			for _, t := range r.terms {
				if t.slot == l.slot {
					lr.step += t.stride
				} else {
					lr.rest = append(lr.rest, t)
				}
			}
			refs = append(refs, lr)
		}
	}
	return refs, len(refs), true
}

// countAccesses computes the trace length of a compiled subtree.
func countAccesses(nodes []cnode) int64 {
	var total int64
	for _, nd := range nodes {
		switch v := nd.(type) {
		case *cloop:
			total += v.trip * countAccesses(v.body)
		case *cstmt:
			total += int64(len(v.refs))
		}
	}
	return total
}

// Run streams the full reference trace to emit, in program order. It is a
// thin adapter over the batched RunBlocks pipeline; callers that can consume
// whole blocks (e.g. cachesim.StackSim.AccessBlock) should use RunBlocks
// directly to avoid the per-access callback.
func (p *Program) Run(emit Emit) {
	p.RunBlocks(DefaultBlockSize, func(sites []int32, addrs []int64) {
		for i, a := range addrs {
			emit(int(sites[i]), a)
		}
	})
}

// RunScalar streams the trace through the original per-access tree walker,
// re-evaluating every subscript sum per reference. It is retained as the
// reference implementation: the differential tests pin RunBlocks to it, and
// the simulator benchmarks use it as the scalar baseline.
func (p *Program) RunScalar(emit Emit) {
	vals := make([]int64, p.nSlots)
	for _, n := range p.root {
		n.run(vals, emit)
	}
}

// CheckBounds runs the trace once, verifying that every address falls within
// the address range of its array. It returns the first violation found.
// Intended for tests and for validating user-supplied nests once before long
// simulations. The valid range of each site's array is resolved once up
// front, so the per-access check is two comparisons regardless of how many
// arrays the nest declares.
func (p *Program) CheckBounds() error {
	base := make([]int64, len(p.Sites))
	limit := make([]int64, len(p.Sites))
	for i, s := range p.Sites {
		name := s.Ref().Array
		b, ok := p.Bases[name]
		if !ok {
			return fmt.Errorf("trace: site %d references unknown array %s", i, name)
		}
		n, err := p.Nest.Arrays[name].Elements().Eval(p.Env)
		if err != nil {
			return err
		}
		base[i], limit[i] = b, b+n
	}
	var violation error
	p.RunBlocks(DefaultBlockSize, func(sites []int32, addrs []int64) {
		if violation != nil {
			return
		}
		for i, addr := range addrs {
			s := sites[i]
			if addr < base[s] || addr >= limit[s] {
				violation = fmt.Errorf("trace: %s address %d outside [%d,%d) of %s",
					p.Sites[s].Key(), addr, base[s], limit[s], p.Sites[s].Ref().Array)
				return
			}
		}
	})
	return violation
}

// Length returns the total number of accesses the trace will produce,
// computed symbolically (without running the trace).
func (p *Program) Length() (int64, error) {
	total := int64(0)
	for _, s := range p.Nest.Stmts() {
		iters := int64(1)
		for _, l := range p.Nest.Enclosing(s) {
			t, err := l.Trip.Eval(p.Env)
			if err != nil {
				return 0, err
			}
			iters *= t
		}
		total += iters * int64(len(s.Refs))
	}
	return total, nil
}

// Collect materializes the whole trace as (site, addr) pairs. Only suitable
// for small programs (tests); long traces should stream through Run.
func (p *Program) Collect() (sites []int, addrs []int64) {
	n, err := p.Length()
	if err == nil && n < 1<<24 {
		sites = make([]int, 0, n)
		addrs = make([]int64, 0, n)
	}
	p.Run(func(site int, addr int64) {
		sites = append(sites, site)
		addrs = append(addrs, addr)
	})
	return sites, addrs
}
