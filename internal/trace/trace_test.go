package trace

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/loopir"
)

func vecSum(t *testing.T) *loopir.Nest {
	t.Helper()
	n := expr.Var("N")
	nest, err := loopir.NewNest("vecsum",
		[]*loopir.Array{
			{Name: "X", Dims: []*expr.Expr{n}},
			{Name: "Y", Dims: []*expr.Expr{n}},
		},
		[]loopir.Node{
			&loopir.Loop{Index: "i", Trip: n, Body: []loopir.Node{
				&loopir.Stmt{Label: "S1", Refs: []loopir.Ref{
					{Array: "X", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i")}},
					{Array: "Y", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx("i")}},
				}},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	return nest
}

func TestVectorTrace(t *testing.T) {
	nest := vecSum(t)
	p, err := Compile(nest, expr.Env{"N": 4})
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs := p.Collect()
	// Arrays laid out alphabetically: X at 0, Y at 4.
	wantAddrs := []int64{0, 4, 1, 5, 2, 6, 3, 7}
	wantSites := []int{0, 1, 0, 1, 0, 1, 0, 1}
	if len(addrs) != len(wantAddrs) {
		t.Fatalf("trace length %d want %d", len(addrs), len(wantAddrs))
	}
	for i := range addrs {
		if addrs[i] != wantAddrs[i] || sites[i] != wantSites[i] {
			t.Fatalf("access %d = (site %d, addr %d), want (site %d, addr %d)",
				i, sites[i], addrs[i], wantSites[i], wantAddrs[i])
		}
	}
	if p.Size != 8 {
		t.Fatalf("address space %d want 8", p.Size)
	}
}

func TestMatmulTraceOrderAndLength(t *testing.T) {
	n := expr.Var("N")
	stmt := &loopir.Stmt{
		Label: "S1",
		Refs: []loopir.Ref{
			{Array: "A", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("j")}},
			{Array: "B", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("j"), loopir.Idx("k")}},
			{Array: "C", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("k")}},
		},
	}
	nest, err := loopir.BuildPerfect(loopir.PerfectNestSpec{
		Name: "matmul",
		Arrays: []*loopir.Array{
			{Name: "A", Dims: []*expr.Expr{n, n}},
			{Name: "B", Dims: []*expr.Expr{n, n}},
			{Name: "C", Dims: []*expr.Expr{n, n}},
		},
		Indices: []string{"i", "j", "k"},
		Trips:   []*expr.Expr{n, n, n},
		Stmt:    stmt,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(nest, expr.Env{"N": 3})
	if err != nil {
		t.Fatal(err)
	}
	wantLen, err := p.Length()
	if err != nil {
		t.Fatal(err)
	}
	if wantLen != 3*3*3*3 {
		t.Fatalf("Length = %d want 81", wantLen)
	}
	sites, addrs := p.Collect()
	if int64(len(addrs)) != wantLen {
		t.Fatalf("trace length %d want %d", len(addrs), wantLen)
	}
	// First iteration (i=0,j=0,k=0): A[0,0]=0, B[0,0]=9, C[0,0]=18.
	if addrs[0] != 0 || addrs[1] != 9 || addrs[2] != 18 {
		t.Fatalf("first iteration addrs = %v", addrs[:3])
	}
	// Second iteration (k=1): A[0,0] again, B[0,1]=10, C[0,1]=19.
	if addrs[3] != 0 || addrs[4] != 10 || addrs[5] != 19 {
		t.Fatalf("second iteration addrs = %v", addrs[3:6])
	}
	// Sites cycle 0,1,2.
	for i, s := range sites {
		if s != i%3 {
			t.Fatalf("site[%d]=%d", i, s)
		}
	}
	if err := p.CheckBounds(); err != nil {
		t.Fatal(err)
	}
}

func TestTiledSubscripts(t *testing.T) {
	// for iT(2) { for iI(3) { X[iT*3+iI] } } must sweep 0..5 in order.
	ti := expr.Var("TI")
	nest, err := loopir.NewNest("tiledvec",
		[]*loopir.Array{{Name: "X", Dims: []*expr.Expr{expr.Var("N")}}},
		[]loopir.Node{
			&loopir.Loop{Index: "iT", Trip: expr.CeilDiv(expr.Var("N"), ti), Body: []loopir.Node{
				&loopir.Loop{Index: "iI", Trip: ti, Body: []loopir.Node{
					&loopir.Stmt{Label: "S1", Refs: []loopir.Ref{
						{Array: "X", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.TilePair("iT", ti, "iI")}},
					}},
				}},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(nest, expr.Env{"N": 6, "TI": 3})
	if err != nil {
		t.Fatal(err)
	}
	_, addrs := p.Collect()
	for i, a := range addrs {
		if a != int64(i) {
			t.Fatalf("addr[%d]=%d want %d", i, a, i)
		}
	}
	if err := p.CheckBounds(); err != nil {
		t.Fatal(err)
	}
}

func TestImperfectTraceOrder(t *testing.T) {
	// for i(2) { S1: X[i]; for j(2) { S2: Y[j] } }
	n := expr.Const(2)
	nest, err := loopir.NewNest("imp",
		[]*loopir.Array{
			{Name: "X", Dims: []*expr.Expr{n}},
			{Name: "Y", Dims: []*expr.Expr{n}},
		},
		[]loopir.Node{
			&loopir.Loop{Index: "i", Trip: n, Body: []loopir.Node{
				&loopir.Stmt{Label: "S1", Refs: []loopir.Ref{
					{Array: "X", Mode: loopir.Write, Subs: []loopir.Subscript{loopir.Idx("i")}},
				}},
				&loopir.Loop{Index: "j", Trip: n, Body: []loopir.Node{
					&loopir.Stmt{Label: "S2", Refs: []loopir.Ref{
						{Array: "Y", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("j")}},
					}},
				}},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(nest, expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	_, addrs := p.Collect()
	// X at 0..1, Y at 2..3. Order: X[0], Y[0], Y[1], X[1], Y[0], Y[1].
	want := []int64{0, 2, 3, 1, 2, 3}
	if len(addrs) != len(want) {
		t.Fatalf("length %d want %d", len(addrs), len(want))
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("addrs = %v want %v", addrs, want)
		}
	}
}

func TestCompileRejectsBadEnv(t *testing.T) {
	nest := vecSum(t)
	if _, err := Compile(nest, expr.Env{}); err == nil {
		t.Fatal("expected error for missing N")
	}
	if _, err := Compile(nest, expr.Env{"N": -1}); err == nil {
		t.Fatal("expected error for negative N")
	}
}

func TestCheckBoundsCatchesOverflow(t *testing.T) {
	// X has extent 2 but the loop runs to 3.
	nest, err := loopir.NewNest("bad",
		[]*loopir.Array{{Name: "X", Dims: []*expr.Expr{expr.Var("M")}}},
		[]loopir.Node{
			&loopir.Loop{Index: "i", Trip: expr.Var("N"), Body: []loopir.Node{
				&loopir.Stmt{Refs: []loopir.Ref{
					{Array: "X", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i")}},
				}},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(nest, expr.Env{"N": 3, "M": 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckBounds(); err == nil {
		t.Fatal("expected bounds violation")
	}
}
