package validate

import (
	"runtime"
	"sync"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/trace"
)

// AssocComparison is the three-way record of the set-associative
// differential harness at one capacity under one geometry: the AssocCache
// ground truth against both the fully-associative model (what the paper
// predicts) and the conflict-aware model (core.PredictMissesFrameConfig).
type AssocComparison struct {
	CacheElems int64
	Ways       int64
	LineElems  int64
	Accesses   int64
	// Simulated is the set-associative LRU simulator's miss count.
	Simulated int64
	// PredictedFA is the fully-associative model's prediction — blind to the
	// set mapping by construction.
	PredictedFA int64
	// PredictedConflict is the associativity-aware prediction.
	PredictedConflict int64
}

// relErr is |predicted − simulated| / simulated with the same zero
// conventions as Comparison.RelErr.
func relErr(predicted, simulated int64) float64 {
	if simulated == 0 {
		if predicted == 0 {
			return 0
		}
		return 1
	}
	d := predicted - simulated
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(simulated)
}

// RelErrFA is the fully-associative model's relative total error.
func (c AssocComparison) RelErrFA() float64 { return relErr(c.PredictedFA, c.Simulated) }

// RelErrConflict is the conflict-aware model's relative total error.
func (c AssocComparison) RelErrConflict() float64 { return relErr(c.PredictedConflict, c.Simulated) }

// RunAssoc cross-checks one nest against the set-associative simulator: the
// trace is generated once through the batched pipeline and fed to one
// AssocCache per watched capacity (the set-associative simulator has no
// single-pass stack-distance trick), then both models predict at every
// capacity. ways and lineElems follow cachesim.NewAssocCache's conventions;
// every capacity must be divisible by ways·lineElems.
func RunAssoc(a *core.Analysis, env expr.Env, capacities []int64, ways, lineElems int64) ([]AssocComparison, error) {
	p, err := trace.Compile(a.Nest, env)
	if err != nil {
		return nil, err
	}
	caches := make([]*cachesim.AssocCache, len(capacities))
	for i, cap := range capacities {
		if caches[i], err = cachesim.NewAssocCache(cap, int(ways), lineElems); err != nil {
			return nil, err
		}
	}
	p.RunBlocks(0, func(_ []int32, addrs []int64) {
		for _, c := range caches {
			c.AccessBlock(addrs)
		}
	})

	f := a.SymTab().FrameOf(env)
	out := make([]AssocComparison, len(capacities))
	for i, cap := range capacities {
		fa, err := a.PredictMissesFrame(f, cap)
		if err != nil {
			return nil, err
		}
		conf, err := a.PredictMissesFrameConfig(f, core.CacheConfig{
			CapacityElems: cap, Ways: ways, LineElems: lineElems,
		})
		if err != nil {
			return nil, err
		}
		out[i] = AssocComparison{
			CacheElems:        cap,
			Ways:              ways,
			LineElems:         lineElems,
			Accesses:          caches[i].Accesses(),
			Simulated:         caches[i].Misses(),
			PredictedFA:       fa.Total,
			PredictedConflict: conf.Total,
		}
	}
	return out, nil
}

// RunAssocSweep runs RunAssoc over independent cases on the same
// deterministic bounded worker pool as RunSweep: out[i] holds case i's
// comparisons in input order at any parallelism level, and the returned
// error is the lowest-indexed case's, matching a sequential sweep.
func RunAssocSweep(cases []Case, capacities []int64, ways, lineElems int64, parallelism int) ([][]AssocComparison, error) {
	out := make([][]AssocComparison, len(cases))
	workers := parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		workers = 1
	}
	if workers <= 1 || len(cases) <= 1 {
		for i, c := range cases {
			cmps, err := RunAssoc(c.Analysis, c.Env, capacities, ways, lineElems)
			if err != nil {
				return nil, err
			}
			out[i] = cmps
		}
		return out, nil
	}

	errs := make([]error, len(cases))
	var next int
	var nextMu sync.Mutex
	take := func() int {
		nextMu.Lock()
		i := next
		next++
		nextMu.Unlock()
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i >= len(cases) {
					return
				}
				out[i], errs[i] = RunAssoc(cases[i].Analysis, cases[i].Env, capacities, ways, lineElems)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
