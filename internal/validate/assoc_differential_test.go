package validate

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/nestgen"
	"repro/internal/testutil"
)

// Set-associative differential harness: generate random nests, simulate
// them through AssocCache at direct-mapped and k-way geometries, and bound
// the conflict-aware model's error — with the fully-associative model run
// side by side as the baseline the conflict term must beat. The corpus
// forces power-of-two bounds: that is the regime where set mapping bites
// (resonant strides, lap-aligned arrays) and where the fully-associative
// model is known to be blind in both directions — it misses conflict
// evictions entirely and over-predicts whole-span thrashing that a set
// split actually confines.
//
// Envelope calibration (measured on this corpus, seed below): the conflict
// model's worst per-comparison error is ≈ 0.84 at direct-mapped, well under
// 0.55 at ≥ 4 ways; means are ≈ 0.063 (direct-mapped), 0.032 (2-way),
// ≈ 0.010 (4/8-way). The asserted budgets leave roughly 1.5× headroom. The
// acceptance bar for the tentpole — the conflict-aware mean at most half
// the fully-associative mean at direct-mapped and 4-way — is asserted
// directly.
const (
	assocDiffSeed  = 20260807
	assocDiffNests = 48
	// Per-comparison envelopes, tiered by associativity: a direct-mapped
	// cache is the hardest target (every conflict evicts).
	assocEnvelopeDM   = 1.0
	assocEnvelopeKWay = 0.75
	// Mean budgets per ways level.
	assocMeanDM   = 0.10
	assocMeanTwo  = 0.06
	assocMeanKWay = 0.03
	// Comparisons with fewer simulated misses than this are boundary noise
	// (a handful of line transfers) and are skipped, as in the fully-
	// associative harness.
	assocMinSimulated = 20
)

var assocDiffWays = []int64{1, 2, 4, 8}
var assocDiffCapacities = []int64{256, 1024, 4096}

func assocEnvelope(ways int64) float64 {
	if ways <= 2 {
		return assocEnvelopeDM
	}
	return assocEnvelopeKWay
}

func assocMeanBudget(ways int64) float64 {
	switch {
	case ways == 1:
		return assocMeanDM
	case ways == 2:
		return assocMeanTwo
	default:
		return assocMeanKWay
	}
}

// assocCorpus generates the set-associative differential corpus: the same
// four shape classes as diffCorpus, with every loop bound forced to a
// power of two (16 or 32) and every tile to 4 — symbols are overridden in
// sorted order so the drawn values are deterministic.
func assocCorpus(t *testing.T, total int) ([]Case, []*loopir.Nest) {
	t.Helper()
	r := rand.New(rand.NewSource(assocDiffSeed))
	cases := make([]Case, 0, total)
	nests := make([]*loopir.Nest, 0, total)
	for i := 0; i < total; i++ {
		var cfg nestgen.Config
		switch i % 4 {
		case 0:
			// perfect, defaults
		case 1:
			cfg = nestgen.Config{MaxDepth: 3, MaxArrays: 3, MaxTrip: 8}
		case 2:
			cfg = nestgen.Config{Imperfect: true}
		case 3:
			cfg = nestgen.Config{Tiled: true}
		}
		nest, env := testutil.GenerateNest(t, r, i, cfg)
		syms := make([]string, 0, len(env))
		for sym := range env {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		for _, sym := range syms {
			if sym[0] != 'T' {
				env[sym] = int64(16 << r.Intn(2))
			}
		}
		for _, sym := range syms {
			if sym[0] == 'T' {
				env[sym] = 4
				if bv, ok := env["N"+sym[1:]]; ok && bv < 16 {
					env["N"+sym[1:]] = 16
				}
			}
		}
		a, err := core.Analyze(nest)
		if err != nil {
			t.Fatalf("%s", describe(i, nest, "analysis failed: "+err.Error()))
		}
		if err := nest.ValidateEnv(env); err != nil {
			t.Fatalf("%s", describe(i, nest, "env invalid: "+err.Error()))
		}
		cases = append(cases, Case{Name: nest.Name, Analysis: a, Env: env})
		nests = append(nests, nest)
	}
	return cases, nests
}

// TestAssocDifferentialCorpus sweeps the corpus across direct-mapped, 2-,
// 4- and 8-way geometries at three capacities and asserts the tiered
// envelopes plus the halving criterion against the fully-associative
// baseline.
func TestAssocDifferentialCorpus(t *testing.T) {
	total := assocDiffNests
	if testing.Short() {
		total = 12
	}
	cases, nests := assocCorpus(t, total)
	for _, ways := range assocDiffWays {
		all, err := RunAssocSweep(cases, assocDiffCapacities, ways, 1, -1)
		if err != nil {
			t.Fatalf("ways=%d: %v", ways, err)
		}
		var sumFA, sumConf float64
		n := 0
		for i, cmps := range all {
			for _, c := range cmps {
				if c.Simulated < assocMinSimulated {
					continue
				}
				n++
				sumFA += c.RelErrFA()
				confErr := c.RelErrConflict()
				sumConf += confErr
				if env := assocEnvelope(ways); confErr > env {
					t.Errorf("%s", describe(i, nests[i],
						"conflict-aware prediction outside envelope"))
					t.Errorf("  ways=%d cap=%d: simulated %d, conflict-aware %d (rel err %.3f > %.2f), fully-assoc %d",
						ways, c.CacheElems, c.Simulated, c.PredictedConflict, confErr, env, c.PredictedFA)
				}
			}
		}
		if n == 0 {
			t.Fatalf("ways=%d: no comparisons above the noise floor", ways)
		}
		meanFA, meanConf := sumFA/float64(n), sumConf/float64(n)
		t.Logf("ways=%d: n=%d meanFA=%.4f meanConf=%.4f", ways, n, meanFA, meanConf)
		if budget := assocMeanBudget(ways); meanConf > budget {
			t.Errorf("ways=%d: conflict-aware mean error %.4f above budget %.4f", ways, meanConf, budget)
		}
		// The tentpole's acceptance bar at direct-mapped and 4-way: the
		// conflict term must at least halve the fully-associative error.
		if (ways == 1 || ways == 4) && !testing.Short() && meanConf > meanFA/2 {
			t.Errorf("ways=%d: conflict-aware mean %.4f not at most half the fully-associative mean %.4f",
				ways, meanConf, meanFA)
		}
	}
}

// TestAssocSweepDeterministicAcrossParallelism pins RunAssocSweep's output
// to be bit-identical at every parallelism level; with -race this also
// exercises the pool for data races.
func TestAssocSweepDeterministicAcrossParallelism(t *testing.T) {
	cases, _ := assocCorpus(t, 12)
	want, err := RunAssocSweep(cases, assocDiffCapacities, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{2, 8, -1} {
		got, err := RunAssocSweep(cases, assocDiffCapacities, 4, 1, parallelism)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: results differ from sequential sweep", parallelism)
		}
	}
}

// TestPow2MatmulConflictRegression freezes the motivating case: a tiled
// matmul with a power-of-two leading dimension on a direct-mapped cache.
// The column walk's stride-N lattice resonates, so the fully-associative
// model underpredicts the simulator; the conflict-aware model must land
// inside the differential envelope.
func TestPow2MatmulConflictRegression(t *testing.T) {
	nest, err := kernels.TiledMatmul()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	// N = 64 with 16×16 tiles on a direct-mapped 512-element cache: the
	// stride-64 column lattice of the B tile reaches only 8 of the 512
	// sets, so the tile self-thrashes. Measured: simulated 336192,
	// fully-associative 49152 (0.85 under), conflict-aware 304959 (0.09).
	env := expr.Env{"N": 64, "TI": 16, "TJ": 16, "TK": 16}
	cmps, err := RunAssoc(a, env, []int64{512}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := cmps[0]
	t.Logf("cap=%d ways=1: simulated %d, fully-assoc %d (err %.3f), conflict-aware %d (err %.3f)",
		c.CacheElems, c.Simulated, c.PredictedFA, c.RelErrFA(), c.PredictedConflict, c.RelErrConflict())
	if float64(c.PredictedFA) > 0.5*float64(c.Simulated) {
		t.Errorf("fully-associative model no longer underpredicts (fa %d vs simulated %d): the motivating gap vanished",
			c.PredictedFA, c.Simulated)
	}
	if got := c.RelErrConflict(); got > 0.20 {
		t.Errorf("conflict-aware prediction %d outside envelope: rel err %.3f > 0.20 (simulated %d)",
			c.PredictedConflict, got, c.Simulated)
	}
}
