package validate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/trace"
)

// Component-level validation: the model claims, per reference site, a
// multiset of (stack distance, instance count) pairs. The simulator
// produces the true multiset. Comparing the two distributions — rather than
// only total misses at one capacity — pins down *which* component formula
// is wrong when something is, and is the strongest form of ground-truthing
// the symbolic model admits.

// SiteDistribution is a per-site stack-distance distribution: distance →
// access count, with first touches under key -1.
type SiteDistribution map[int64]int64

// Total returns the number of accesses in the distribution.
func (d SiteDistribution) Total() int64 {
	var t int64
	for _, n := range d {
		t += n
	}
	return t
}

// ComponentCheck compares, per site, the model's predicted distribution
// against the simulator's. Match quality is summarized by the earth-mover
// style overlap: the fraction of accesses whose predicted distance bucket
// agrees with the simulation (bucketed by powers of two, since
// representative spans are accurate to low-order terms, not exact).
type ComponentCheck struct {
	SiteKey   string
	Predicted SiteDistribution
	Simulated SiteDistribution
	// Overlap is in [0,1]: 1 means the bucketed distributions coincide.
	Overlap float64
}

// bucket maps a stack distance to a comparison bucket: first touches and
// exact small distances are their own buckets; larger distances group by
// power of two.
func bucket(sd int64) int64 {
	if sd < 0 {
		return -1
	}
	if sd <= 8 {
		return sd
	}
	b := int64(16)
	for ; b < sd; b *= 2 {
	}
	return b
}

// CheckComponents runs the full comparison for every site.
func CheckComponents(a *core.Analysis, env expr.Env) ([]ComponentCheck, error) {
	p, err := trace.Compile(a.Nest, env)
	if err != nil {
		return nil, err
	}
	simDist := make([]SiteDistribution, len(p.Sites))
	for i := range simDist {
		simDist[i] = SiteDistribution{}
	}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), nil)
	sim.OnSD = func(site int, sd int64) {
		if sd == cachesim.InfSD {
			simDist[site][-1]++
		} else {
			simDist[site][sd]++
		}
	}
	p.RunBlocks(trace.DefaultBlockSize, sim.AccessBlock)

	// Predicted distributions from the components, evaluated through
	// compiled programs on one frame: the per-position spreading loop used
	// to re-walk the Base and Slope trees for every position.
	tab := a.SymTab()
	f := tab.FrameOf(env)
	predDist := map[string]SiteDistribution{}
	for _, c := range a.Components {
		key := c.Site.Key()
		if predDist[key] == nil {
			predDist[key] = SiteDistribution{}
		}
		count, err := expr.Compile(c.Count, tab).Eval(f)
		if err != nil {
			return nil, err
		}
		if count <= 0 {
			continue
		}
		if c.SD.Base.IsInf() {
			predDist[key][-1] += count
			continue
		}
		base, err := expr.Compile(c.SD.Base, tab).Eval(f)
		if err != nil {
			return nil, err
		}
		if c.SD.IsConst() {
			predDist[key][base] += count
			continue
		}
		// Variable SD: spread the count uniformly over the position range.
		// Base and Slope are position-independent, so sd(a) = base + slope·a.
		slope, err := expr.Compile(c.SD.Slope, tab).Eval(f)
		if err != nil {
			return nil, err
		}
		rng, err := expr.Compile(c.FreeRange, tab).Eval(f)
		if err != nil {
			return nil, err
		}
		if rng <= 0 {
			return nil, fmt.Errorf("validate: non-positive free range for %s", key)
		}
		per := count / rng
		for aPos := int64(0); aPos < rng; aPos++ {
			predDist[key][base+slope*aPos] += per
		}
		if rem := count - per*rng; rem > 0 {
			predDist[key][base] += rem
		}
	}

	var out []ComponentCheck
	for i, site := range p.Sites {
		key := site.Key()
		pd := predDist[key]
		if pd == nil {
			pd = SiteDistribution{}
		}
		cc := ComponentCheck{SiteKey: key, Predicted: pd, Simulated: simDist[i]}
		cc.Overlap = overlap(pd, simDist[i])
		out = append(out, cc)
	}
	return out, nil
}

// overlap computes the bucketed histogram intersection over total accesses.
func overlap(a, b SiteDistribution) float64 {
	ba := map[int64]int64{}
	bb := map[int64]int64{}
	for sd, n := range a {
		ba[bucket(sd)] += n
	}
	for sd, n := range b {
		bb[bucket(sd)] += n
	}
	var inter, total int64
	for k, na := range ba {
		nb := bb[k]
		if na < nb {
			inter += na
		} else {
			inter += nb
		}
	}
	for _, n := range bb {
		total += n
	}
	if total == 0 {
		return 1
	}
	return float64(inter) / float64(total)
}

// FormatComponentChecks renders the overlap summary, worst sites first.
func FormatComponentChecks(checks []ComponentCheck) string {
	sorted := append([]ComponentCheck(nil), checks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Overlap < sorted[j].Overlap })
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-9s %s\n", "site", "overlap", "(bucketed SD distribution agreement)")
	for _, c := range sorted {
		fmt.Fprintf(&b, "%-10s %8.2f%%  accesses=%d\n", c.SiteKey, 100*c.Overlap, c.Simulated.Total())
	}
	return b.String()
}
