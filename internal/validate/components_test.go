package validate

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
)

func TestCheckComponentsMatmul(t *testing.T) {
	nest, err := kernels.TiledMatmul()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env, err := kernels.MatmulEnv(24, 4, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	checks, err := CheckComponents(a, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 3 {
		t.Fatalf("%d sites", len(checks))
	}
	for _, c := range checks {
		// Conservation: the predicted distribution covers every access.
		if got, want := c.Predicted.Total(), c.Simulated.Total(); got != want {
			t.Errorf("%s: predicted %d accesses vs %d", c.SiteKey, got, want)
		}
		// Distribution agreement: representative spans should land in the
		// right power-of-two bucket for the overwhelming majority.
		if c.Overlap < 0.90 {
			t.Errorf("%s: overlap %.3f\npred=%v\nsim=%v", c.SiteKey, c.Overlap, c.Predicted, c.Simulated)
		}
	}
	out := FormatComponentChecks(checks)
	if !strings.Contains(out, "S1#0") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}

func TestCheckComponentsTwoIndex(t *testing.T) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env, err := kernels.TwoIndexEnv(16, 4, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	checks, err := CheckComponents(a, env)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64 = 1
	for _, c := range checks {
		if got, want := c.Predicted.Total(), c.Simulated.Total(); got != want {
			t.Errorf("%s: predicted %d accesses vs %d", c.SiteKey, got, want)
		}
		if c.Overlap < worst {
			worst = c.Overlap
		}
	}
	// The imperfect nest's cross-statement spans are representative, not
	// exact; still the bulk of every distribution must agree.
	if worst < 0.70 {
		t.Errorf("worst site overlap %.3f\n%s", worst, FormatComponentChecks(checks))
	}
}
