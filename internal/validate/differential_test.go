package validate

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/loopir"
	"repro/internal/nestgen"
	"repro/internal/testutil"
)

// Differential model-vs-simulator harness: generate random nests across the
// supported class — perfect, imperfect and tiled — run the analytical model
// and the exact LRU stack simulator side by side at several capacities, and
// bound the relative error. First-touch (compulsory) counts must agree
// exactly; total predictions must stay within the accuracy envelope below.
//
// Envelope calibration: the paper reports a few percent error on its
// kernels at realistic cache sizes, and the harness observes the same in
// aggregate (mean rel err ≈ 2% over this corpus, asserted below as ≤ 8%).
// Per-comparison bounds are tiered by capacity: the generator deliberately
// produces tiny trip counts (2–8 iterations), and at caches of only a few
// elements a one-iteration boundary effect in a span is a large fraction of
// the total — a degenerate regime the paper never evaluates, bounded
// loosely; at ≥ 64 elements the model must be tight.
const (
	diffNests         = 56   // total generated nests (14 per shape class)
	diffEnvelopeTiny  = 0.75 // capacities below 64 elements
	diffEnvelopePaper = 0.20 // capacities in the paper's regime
	diffMeanEnvelope  = 0.08 // aggregate over every comparison
)

func envelopeFor(capacity int64) float64 {
	if capacity < 64 {
		return diffEnvelopeTiny
	}
	return diffEnvelopePaper
}

// diffCase describes one generated nest for reproduction: re-run with the
// same seed and index to regenerate it.
func describe(i int, nest *loopir.Nest, err string) string {
	return fmt.Sprintf("nest #%d (%s): %s\nreproduce: nestgen.Generate(rand.New(rand.NewSource(diffSeed)), %d, cfg)\n%s",
		i, nest.Name, err, i, loopir.Unparse(nest))
}

const diffSeed = 20260805

// diffCorpus deterministically generates the differential corpus: the nest,
// env and analysis for each index. Generation is sequential (the rand
// stream orders it); simulation is what RunSweep distributes.
func diffCorpus(t *testing.T, total int) ([]Case, []*loopir.Nest) {
	t.Helper()
	r := rand.New(rand.NewSource(diffSeed))
	cases := make([]Case, 0, total)
	nests := make([]*loopir.Nest, 0, total)
	for i := 0; i < total; i++ {
		var cfg nestgen.Config
		switch i % 4 {
		case 0:
			// perfect, defaults
		case 1:
			cfg = nestgen.Config{MaxDepth: 3, MaxArrays: 3, MaxTrip: 8}
		case 2:
			cfg = nestgen.Config{Imperfect: true}
		case 3:
			cfg = nestgen.Config{Tiled: true}
		}
		nest, env := testutil.GenerateNest(t, r, i, cfg)
		a, err := core.Analyze(nest)
		if err != nil {
			t.Fatalf("%s", describe(i, nest, "analysis failed: "+err.Error()))
		}
		cases = append(cases, Case{Name: nest.Name, Analysis: a, Env: env})
		nests = append(nests, nest)
	}
	return cases, nests
}

func TestDifferentialModelVsSimulator(t *testing.T) {
	total := diffNests
	if testing.Short() {
		total = 12
	}
	cases, nests := diffCorpus(t, total)
	all, err := RunSweep(cases, []int64{8, 32, 128, 512}, SweepOptions{Parallelism: -1})
	if err != nil {
		t.Fatalf("differential sweep failed: %v", err)
	}
	var maxRel, sumRel float64
	var maxDesc string
	checked := 0
	for i, cmps := range all {
		nest := nests[i]
		if err := CheckCompulsory(cmps); err != nil {
			t.Errorf("%s", describe(i, nest, err.Error()))
		}
		for _, c := range cmps {
			// Relative error on a handful of misses is meaningless; at the
			// smallest capacities of tiny nests nearly everything misses and
			// both sides agree anyway, so gate on a minimal denominator.
			if c.SimulatedTotal < 20 {
				if c.PredictedTotal < 0 {
					t.Errorf("%s", describe(i, nest,
						fmt.Sprintf("negative prediction %d at capacity %d", c.PredictedTotal, c.CacheElems)))
				}
				continue
			}
			checked++
			rel := c.RelErr()
			sumRel += rel
			if rel > maxRel {
				maxRel = rel
				maxDesc = fmt.Sprintf("nest #%d (%s) capacity %d: predicted %d vs simulated %d",
					i, nest.Name, c.CacheElems, c.PredictedTotal, c.SimulatedTotal)
			}
			if env4 := envelopeFor(c.CacheElems); rel > env4 {
				t.Errorf("%s", describe(i, nest, fmt.Sprintf(
					"capacity %d: predicted %d vs simulated %d (rel err %.3f > envelope %.2f), env %v",
					c.CacheElems, c.PredictedTotal, c.SimulatedTotal, rel, env4, cases[i].Env)))
			}
		}
	}
	if checked == 0 {
		t.Fatal("no capacity produced enough misses to compare — generator or capacities misconfigured")
	}
	if mean := sumRel / float64(checked); mean > diffMeanEnvelope {
		t.Errorf("mean rel err %.4f over %d comparisons exceeds aggregate envelope %.2f",
			mean, checked, diffMeanEnvelope)
	}
	t.Logf("differential harness: %d nests, %d comparisons, mean rel err %.4f, max rel err %.4f (%s)",
		total, checked, sumRel/float64(checked), maxRel, maxDesc)
}

// TestDifferentialDeterministic re-generates the first few nests with the
// same seed and asserts identical predictions — the reproduction recipe
// printed on failure must actually reproduce.
func TestDifferentialDeterministic(t *testing.T) {
	run := func() []int64 {
		r := rand.New(rand.NewSource(diffSeed))
		var totals []int64
		for i := 0; i < 6; i++ {
			cfg := nestgen.Config{Imperfect: i%2 == 0}
			nest, env := testutil.GenerateNest(t, r, i, cfg)
			a, err := core.Analyze(nest)
			if err != nil {
				t.Fatal(err)
			}
			total, err := a.PredictTotal(env, 64)
			if err != nil {
				t.Fatal(err)
			}
			totals = append(totals, total)
		}
		return totals
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("nest %d not deterministic: %d vs %d", i, first[i], second[i])
		}
	}
}
