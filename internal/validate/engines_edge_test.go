package validate

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/cachesim/analytic"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/nestgen"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// Edge-case behavior across all three engines, table-driven: the contract is
// that degenerate inputs either produce consistent results or consistent
// errors — never an engine-dependent mix of the two.

// TestEnginesZeroTrip: a loop whose trip evaluates to zero is outside the
// model's class (validation requires positive trips), and every engine must
// reject it with the same validation error — not silently return zeros.
func TestEnginesZeroTrip(t *testing.T) {
	nest, err := loopir.Parse(`
nest zerotrip
array A[N]
array B[N]
for i = N - 1 {
  S1: A[i] += B[i]
}
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{"N": 1} // trip N-1 evaluates to 0
	for _, eng := range cachesim.Engines() {
		_, err := RunSweep([]Case{{Name: "zerotrip", Analysis: a, Env: env}},
			[]int64{16}, SweepOptions{Engine: eng})
		if err == nil {
			t.Errorf("engine %s accepted a zero-trip nest", eng)
			continue
		}
		if !strings.Contains(err.Error(), "trip") {
			t.Errorf("engine %s rejected with %q, want a trip-validation error", eng, err)
		}
	}
}

// TestEnginesDegenerateCapacities: capacities 0 and 1 at the engine level
// (the service layer rejects non-positive watches, the engines support
// them). At capacity 0 every access misses; at capacity 1 only immediate
// repeats hit — and the probe class is exact there, so all engines agree
// to the element.
func TestEnginesDegenerateCapacities(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	env := expr.Env{"N": 16, "TI": 8, "TJ": 8, "TK": 8}
	watches := []int64{0, 1}

	p, err := trace.Compile(a.Nest, env)
	if err != nil {
		t.Fatal(err)
	}
	exact := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.RunBlocks(0, exact.AccessBlock)
	er := exact.Results()
	if er.Misses[0] != er.Accesses {
		t.Fatalf("capacity 0: %d misses of %d accesses, want all", er.Misses[0], er.Accesses)
	}
	// Matmul's innermost body rotates through three arrays, so no access
	// repeats its immediate predecessor and capacity 1 hits nothing either;
	// the engines must still agree on that to the element.
	if er.Misses[1] > er.Misses[0] || er.Misses[1] < er.Distinct {
		t.Fatalf("capacity 1 misses %d outside [%d distinct, %d all]", er.Misses[1], er.Distinct, er.Misses[0])
	}

	ar, _, err := analytic.Simulate(a, env, watches)
	if err != nil {
		t.Fatal(err)
	}
	// The sampled engine's capacity resolution is 2^k elements, so only the
	// auto rate (which resolves to exact for this address space) can answer
	// at capacities 0 and 1.
	sampled := cachesim.NewSampledSim(p.Size, len(p.Sites), watches, cachesim.DefaultLog2Rate(p.Size), 0)
	p.RunBlocks(0, sampled.AccessBlock)
	sr := sampled.Results()
	for wi, w := range watches {
		if ar.Misses[wi] != er.Misses[wi] {
			t.Errorf("capacity %d: analytic %d vs exact %d", w, ar.Misses[wi], er.Misses[wi])
		}
		if sr.Misses[wi] != er.Misses[wi] {
			t.Errorf("capacity %d: sampled %d vs exact %d", w, sr.Misses[wi], er.Misses[wi])
		}
	}
}

// TestEnginesTripOneTiles: tiles equal to the problem size make every tile
// loop a single iteration, which zeroes the (trip-1)-counted components —
// the regression case for the zero-count evaluation guard (degenerate span
// expressions must not error, they must contribute zero).
func TestEnginesTripOneTiles(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	env := expr.Env{"N": 8, "TI": 8, "TJ": 8, "TK": 8}
	watches := []int64{1, 1 << 20}

	p, err := trace.Compile(a.Nest, env)
	if err != nil {
		t.Fatal(err)
	}
	exact := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.RunBlocks(0, exact.AccessBlock)
	er := exact.Results()

	ar, _, err := analytic.Simulate(a, env, watches)
	if err != nil {
		t.Fatalf("analytic engine errored on trip-1 tile loops: %v", err)
	}
	if ar.Accesses != er.Accesses || ar.Distinct != er.Distinct {
		t.Errorf("totals: analytic %d/%d vs exact %d/%d", ar.Accesses, ar.Distinct, er.Accesses, er.Distinct)
	}
	for wi, w := range watches {
		if ar.Misses[wi] != er.Misses[wi] {
			t.Errorf("capacity %d: analytic %d vs exact %d", w, ar.Misses[wi], er.Misses[wi])
		}
	}
}

// TestEnginesSingleArray: nests touching a single array across all engines
// — compulsory counts exact everywhere, and at a footprint-covering
// capacity all engines coincide exactly.
func TestEnginesSingleArray(t *testing.T) {
	r := rand.New(rand.NewSource(diffSeed))
	watches := []int64{8, 1 << 20}
	for i := 0; i < 6; i++ {
		nest, env := testutil.GenerateNest(t, r, i, nestgen.Config{MaxArrays: 1})
		a, err := core.Analyze(nest)
		if err != nil {
			t.Fatalf("%s", describe(i, nest, "analysis failed: "+err.Error()))
		}
		cases := []Case{{Name: nest.Name, Analysis: a, Env: env}}
		byEngine := map[cachesim.Engine][]Comparison{}
		for _, eng := range cachesim.Engines() {
			out, err := RunSweep(cases, watches, SweepOptions{Engine: eng})
			if err != nil {
				t.Fatalf("%s", describe(i, nest, fmt.Sprintf("engine %s failed: %v", eng, err)))
			}
			byEngine[eng] = out[0]
		}
		e := byEngine[cachesim.EngineExact]
		for _, eng := range []cachesim.Engine{cachesim.EngineAnalytic, cachesim.EngineSampled} {
			o := byEngine[eng]
			for wi, w := range watches {
				if o[wi].SimulatedCompulsory != e[wi].SimulatedCompulsory {
					t.Errorf("%s", describe(i, nest, fmt.Sprintf(
						"engine %s compulsory %d vs exact %d", eng, o[wi].SimulatedCompulsory, e[wi].SimulatedCompulsory)))
				}
				if w >= 1<<20 && o[wi].SimulatedTotal != e[wi].SimulatedTotal {
					t.Errorf("%s", describe(i, nest, fmt.Sprintf(
						"engine %s at footprint capacity: %d vs exact %d", eng, o[wi].SimulatedTotal, e[wi].SimulatedTotal)))
				}
			}
		}
	}
}

// TestEnginesCapacitiesCrossed: the miss-curve summary (which watched
// capacities still change the outcome) must agree across engines when the
// per-capacity counts do — watch order given shuffled to exercise the
// sort inside CapacitiesCrossed.
func TestEnginesCapacitiesCrossed(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	env := expr.Env{"N": 24, "TI": 8, "TJ": 8, "TK": 8}
	watches := []int64{1 << 20, 1, 64}

	p, err := trace.Compile(a.Nest, env)
	if err != nil {
		t.Fatal(err)
	}
	exact := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.RunBlocks(0, exact.AccessBlock)
	sampled := cachesim.NewSampledSim(p.Size, len(p.Sites), watches, 0, 0)
	p.RunBlocks(0, sampled.AccessBlock)
	ar, _, err := analytic.Simulate(a, env, watches)
	if err != nil {
		t.Fatal(err)
	}

	want := exact.Results().CapacitiesCrossed()
	if len(want) == 0 {
		t.Fatal("expected the small capacities to differ from the footprint capacity")
	}
	if got := sampled.Results().CapacitiesCrossed(); !reflect.DeepEqual(got, want) {
		t.Errorf("sampled crossed capacities %v, exact %v", got, want)
	}
	if got := ar.CapacitiesCrossed(); !reflect.DeepEqual(got, want) {
		t.Errorf("analytic crossed capacities %v, exact %v", got, want)
	}
}
