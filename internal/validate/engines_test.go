package validate

import (
	"fmt"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/trace"
)

// Cross-engine differential harness: run the three simulation engines —
// exact (StackSim ground truth), analytic (closed-form model) and sampled
// (SHARDS-style estimate) — over the same generated corpus the
// model-vs-simulator harness uses, and enforce each engine's fidelity
// contract against the exact baseline.
//
// Tier calibration (measured over this corpus, fixed seed):
//   - accesses and compulsory counts: exact for every engine, every nest;
//   - analytic at a capacity covering the footprint: exact (misses are the
//     compulsory count on both sides);
//   - analytic on perfect nests at >= 256 elements: exact — the structured
//     class away from the boundary regime;
//   - analytic elsewhere: the model envelope, tiered by capacity like the
//     model-vs-simulator harness but with a wider sub-64 tier — this
//     harness samples capacity 16, deeper into the boundary regime than
//     that harness's 8/32 points (max observed there: 0.875) — and the
//     same aggregate mean bound;
//   - sampled: inside its own reported Hoeffding envelope on >= 95% of
//     (nest, capacity) comparisons, and bit-identical to exact at rate 1.
const (
	engHugeCap      = 1 << 20 // covers every corpus nest's footprint
	engExactFloor   = 256     // perfect nests must match exactly at >= this
	engSampledLog2  = 2       // forced 1/4 sampling rate (corpus spaces are small)
	engSampledCover = 0.95    // required CI hit rate
	engEnvelopeTiny = 0.90    // capacities below 64 elements (see above)
)

func engEnvelopeFor(capacity int64) float64 {
	if capacity < 64 {
		return engEnvelopeTiny
	}
	return envelopeFor(capacity)
}

// engWatches returns the harness capacities: the model-vs-simulator tiers
// plus a footprint-covering capacity where exactness is unconditional.
func engWatches() []int64 { return []int64{16, 64, 256, 4096, engHugeCap} }

// perfectShape reports whether corpus index i is one of the two perfect
// (non-imperfect, non-tiled) generator classes — see diffCorpus.
func perfectShape(i int) bool { return i%4 == 0 || i%4 == 1 }

func TestCrossEngineDifferential(t *testing.T) {
	total := diffNests
	if testing.Short() {
		total = 12
	}
	cases, nests := diffCorpus(t, total)
	watches := engWatches()

	exact, err := RunSweep(cases, watches, SweepOptions{Parallelism: -1})
	if err != nil {
		t.Fatalf("exact sweep failed: %v", err)
	}
	analytic, err := RunSweep(cases, watches, SweepOptions{Parallelism: -1, Engine: cachesim.EngineAnalytic})
	if err != nil {
		t.Fatalf("analytic sweep failed: %v", err)
	}

	var sumRel float64
	checked := 0
	for i := range cases {
		nest := nests[i]
		for wi, cap := range watches {
			e, a := exact[i][wi], analytic[i][wi]
			if a.Accesses != e.Accesses {
				t.Errorf("%s", describe(i, nest, fmt.Sprintf(
					"analytic accesses %d vs exact %d", a.Accesses, e.Accesses)))
			}
			if a.SimulatedCompulsory != e.SimulatedCompulsory {
				t.Errorf("%s", describe(i, nest, fmt.Sprintf(
					"analytic compulsory %d vs exact %d", a.SimulatedCompulsory, e.SimulatedCompulsory)))
			}
			// Through the analytic engine the simulated side IS the model.
			if a.PredictedTotal != a.SimulatedTotal {
				t.Errorf("%s", describe(i, nest, fmt.Sprintf(
					"analytic engine disagrees with the model it evaluates: %d vs %d at capacity %d",
					a.SimulatedTotal, a.PredictedTotal, cap)))
			}
			am, em := a.SimulatedTotal, e.SimulatedTotal
			exactTier := cap >= engHugeCap || (perfectShape(i) && cap >= engExactFloor)
			if exactTier {
				if am != em {
					t.Errorf("%s", describe(i, nest, fmt.Sprintf(
						"exact tier violated at capacity %d: analytic %d vs exact %d", cap, am, em)))
				}
				continue
			}
			if em < 20 {
				continue // relative error on a handful of misses is meaningless
			}
			checked++
			d := float64(am - em)
			if d < 0 {
				d = -d
			}
			rel := d / float64(em)
			sumRel += rel
			if env := engEnvelopeFor(cap); rel > env {
				t.Errorf("%s", describe(i, nest, fmt.Sprintf(
					"capacity %d: analytic %d vs exact %d (rel err %.3f > envelope %.2f)",
					cap, am, em, rel, env)))
			}
		}
	}
	if checked == 0 {
		t.Fatal("no envelope-tier comparison had enough misses — corpus or capacities misconfigured")
	}
	if mean := sumRel / float64(checked); mean > diffMeanEnvelope {
		t.Errorf("analytic mean rel err %.4f over %d comparisons exceeds %.2f", mean, checked, diffMeanEnvelope)
	}

	// Sampled engine: drive each case's SampledSim directly so its reported
	// bound is visible, and require the exact count inside the envelope on
	// >= 95% of comparisons (fixed seed — the rate is deterministic).
	comparisons, covered := 0, 0
	for i, c := range cases {
		p, err := trace.Compile(c.Analysis.Nest, c.Env)
		if err != nil {
			t.Fatalf("%s", describe(i, nests[i], "trace compile failed: "+err.Error()))
		}
		sim := cachesim.NewSampledSim(p.Size, len(p.Sites), watches, engSampledLog2, 0)
		p.RunBlocks(0, sim.AccessBlock)
		sr := sim.Results()
		bound := sim.MissBound(0.05)
		if sr.Accesses != exact[i][0].Accesses {
			t.Errorf("%s", describe(i, nests[i], fmt.Sprintf(
				"sampled access total %d vs exact %d (totals are counted, not estimated)",
				sr.Accesses, exact[i][0].Accesses)))
		}
		for wi := range watches {
			comparisons++
			diff := sr.Misses[wi] - exact[i][wi].SimulatedTotal
			if diff < 0 {
				diff = -diff
			}
			if diff <= bound {
				covered++
			}
		}
	}
	rate := float64(covered) / float64(comparisons)
	if rate < engSampledCover {
		t.Errorf("sampled engine covered %d/%d comparisons (%.3f < %.2f required)",
			covered, comparisons, rate, engSampledCover)
	}
	t.Logf("cross-engine harness: %d nests; analytic mean rel err %.4f over %d envelope comparisons; sampled CI coverage %.3f",
		total, sumRel/float64(checked), checked, rate)
}

// TestSampledEngineRateOneMatchesExact: through the sweep plumbing, the
// sampled engine at rate 1 must reproduce the exact engine bit for bit.
func TestSampledEngineRateOneMatchesExact(t *testing.T) {
	cases, nests := diffCorpus(t, 8)
	watches := []int64{8, 128, 2048}
	exact, err := RunSweep(cases, watches, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// SampleLog2Rate 0 means "auto"; the corpus address spaces are far under
	// DefaultLog2Rate's 64K budget, so auto resolves to rate 1 (log2 rate 0)
	// for every nest and the engine degenerates to exact.
	sampled, err := RunSweep(cases, watches, SweepOptions{Engine: cachesim.EngineSampled})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cases {
		for wi := range watches {
			e, s := exact[i][wi], sampled[i][wi]
			if e.SimulatedTotal != s.SimulatedTotal || e.SimulatedCompulsory != s.SimulatedCompulsory {
				t.Errorf("%s", describe(i, nests[i], fmt.Sprintf(
					"auto-rate sampled diverged from exact at capacity %d: %d/%d vs %d/%d",
					watches[wi], s.SimulatedTotal, s.SimulatedCompulsory,
					e.SimulatedTotal, e.SimulatedCompulsory)))
			}
		}
	}
}

// TestSampledEngineDeterministic: the sampled engine is a pure function of
// (trace, rate, seed) — repeated forced-rate sweeps agree, at any
// parallelism.
func TestSampledEngineDeterministic(t *testing.T) {
	cases, _ := diffCorpus(t, 8)
	watches := []int64{16, 512}
	opt := SweepOptions{Engine: cachesim.EngineSampled, SampleLog2Rate: 2}
	first, err := RunSweep(cases, watches, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallelism = -1
	second, err := RunSweep(cases, watches, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		for wi := range first[i] {
			if first[i][wi].SimulatedTotal != second[i][wi].SimulatedTotal {
				t.Fatalf("case %d capacity %d: %d vs %d across runs",
					i, watches[wi], first[i][wi].SimulatedTotal, second[i][wi].SimulatedTotal)
			}
		}
	}
}
