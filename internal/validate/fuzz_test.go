package validate

import (
	"math/rand"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/cachesim/analytic"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/nestgen"
	"repro/internal/trace"
)

// Fuzz targets for the cross-engine contract: arbitrary generator seeds and
// engine parameters must never panic, and the capacity-independent halves
// of the results (accesses, compulsory counts) plus the structural
// invariants (non-negative, bounded by accesses, monotone in capacity)
// must hold for every engine on every accepted nest. Rejected nests are
// fine; inconsistent acceptance across engines is not. Both targets run in
// make check's fuzz smoke and are fuzzable standalone:
//
//	go test -run '^$' -fuzz '^FuzzAnalyticVsExact$' ./internal/validate

// fuzzNest regenerates a corpus-style nest from fuzzed inputs, or reports
// that the input is rejected. The trace is bounded so a single case stays
// fast under the fuzzer.
func fuzzNest(seed int64, shape uint8) (*core.Analysis, *trace.Program, expr.Env, bool) {
	var cfg nestgen.Config
	switch shape % 4 {
	case 1:
		cfg = nestgen.Config{MaxDepth: 3, MaxArrays: 3, MaxTrip: 8}
	case 2:
		cfg = nestgen.Config{Imperfect: true}
	case 3:
		cfg = nestgen.Config{Tiled: true}
	}
	r := rand.New(rand.NewSource(seed))
	nest, env, err := nestgen.Generate(r, int(shape), cfg)
	if err != nil {
		return nil, nil, nil, false
	}
	a, err := core.Analyze(nest)
	if err != nil {
		return nil, nil, nil, false
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		return nil, nil, nil, false
	}
	if n, err := p.Length(); err != nil || n > 1<<20 {
		return nil, nil, nil, false
	}
	return a, p, env, true
}

// FuzzAnalyticVsExact: the analytic engine on any accepted nest must agree
// with the exact simulator on accesses and compulsory counts, produce
// misses within [0, accesses] that are monotone non-increasing in capacity,
// and coincide exactly once the capacity covers the footprint.
func FuzzAnalyticVsExact(f *testing.F) {
	for shape := uint8(0); shape < 4; shape++ {
		f.Add(int64(20260805), shape)
		f.Add(int64(1), shape)
	}
	f.Fuzz(func(t *testing.T, seed int64, shape uint8) {
		a, p, env, ok := fuzzNest(seed, shape)
		if !ok {
			return
		}
		// Ascending watches ending beyond the footprint (p.Size bounds the
		// distinct-address count from above).
		watches := []int64{1, 16, 256, p.Size + 1}
		sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
		p.RunBlocks(0, sim.AccessBlock)
		er := sim.Results()

		ar, info, err := analytic.Simulate(a, env, watches)
		if err != nil {
			t.Fatalf("exact engine accepted but analytic rejected (seed %d shape %d): %v", seed, shape, err)
		}
		if info.Components <= 0 {
			t.Fatalf("accepted nest with %d components", info.Components)
		}
		if ar.Accesses != er.Accesses {
			t.Fatalf("accesses %d vs exact %d (seed %d shape %d)", ar.Accesses, er.Accesses, seed, shape)
		}
		if ar.Distinct != er.Distinct {
			t.Fatalf("compulsory %d vs exact %d (seed %d shape %d)", ar.Distinct, er.Distinct, seed, shape)
		}
		prev := int64(-1)
		for wi, w := range watches {
			m := ar.Misses[wi]
			if m < 0 || m > ar.Accesses {
				t.Fatalf("capacity %d: misses %d outside [0, %d] (seed %d shape %d)", w, m, ar.Accesses, seed, shape)
			}
			if m < ar.Distinct {
				t.Fatalf("capacity %d: misses %d below compulsory %d (seed %d shape %d)", w, m, ar.Distinct, seed, shape)
			}
			if prev >= 0 && m > prev {
				t.Fatalf("misses grew with capacity: %d at %d after %d (seed %d shape %d)", m, w, prev, seed, shape)
			}
			prev = m
		}
		// Beyond the footprint only compulsory misses remain — a theorem for
		// the simulator (stack distances never exceed the distinct count)
		// and required of the model in the structured class.
		last := len(watches) - 1
		if er.Misses[last] != er.Distinct {
			t.Fatalf("exact misses %d beyond footprint, distinct %d (seed %d shape %d)",
				er.Misses[last], er.Distinct, seed, shape)
		}
		if info.Exact && ar.Misses[last] != er.Distinct {
			t.Fatalf("footprint capacity %d: analytic %d, want compulsory %d (seed %d shape %d)",
				watches[last], ar.Misses[last], er.Distinct, seed, shape)
		}
	})
}

// FuzzSampledBounds: the sampled engine at any rate must count (not
// estimate) total accesses, keep estimates within [compulsory-free, total]
// bounds and monotone in capacity, report a sane Hoeffding envelope, and
// degenerate to the exact simulator bit for bit at rate 1.
func FuzzSampledBounds(f *testing.F) {
	for shape := uint8(0); shape < 4; shape++ {
		f.Add(int64(20260805), shape, uint8(0))
		f.Add(int64(20260805), shape, uint8(2))
		f.Add(int64(7), shape, uint8(5))
	}
	f.Fuzz(func(t *testing.T, seed int64, shape, rate uint8) {
		_, p, _, ok := fuzzNest(seed, shape)
		if !ok {
			return
		}
		k := int(rate % 8)
		watches := []int64{1, 64, 4096}
		sim := cachesim.NewSampledSim(p.Size, len(p.Sites), watches, k, 0)
		p.RunBlocks(0, sim.AccessBlock)
		sr := sim.Results()
		st := sim.Stats()
		bound := sim.MissBound(0.05)

		exact := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
		p.RunBlocks(0, exact.AccessBlock)
		er := exact.Results()

		if sr.Accesses != er.Accesses {
			t.Fatalf("sampled access total %d vs counted %d (seed %d shape %d k %d)", sr.Accesses, er.Accesses, seed, shape, k)
		}
		if st.SampledAccesses > st.TotalAccesses || st.SampledAccesses < 0 {
			t.Fatalf("sampled %d of %d accesses (seed %d shape %d k %d)", st.SampledAccesses, st.TotalAccesses, seed, shape, k)
		}
		if bound < 0 || bound > sr.Accesses {
			t.Fatalf("bound %d outside [0, %d] (seed %d shape %d k %d)", bound, sr.Accesses, seed, shape, k)
		}
		prev := int64(-1)
		for wi, w := range watches {
			m := sr.Misses[wi]
			if m < 0 || m > sr.Accesses {
				t.Fatalf("capacity %d: estimate %d outside [0, %d] (seed %d shape %d k %d)", w, m, sr.Accesses, seed, shape, k)
			}
			if prev >= 0 && m > prev {
				t.Fatalf("estimate grew with capacity: %d at %d after %d (seed %d shape %d k %d)", m, w, prev, seed, shape, k)
			}
			prev = m
		}
		if k == 0 {
			if bound != 0 {
				t.Fatalf("rate-1 bound %d, want 0", bound)
			}
			if sr.Distinct != er.Distinct {
				t.Fatalf("rate-1 distinct %d vs %d", sr.Distinct, er.Distinct)
			}
			for wi := range watches {
				if sr.Misses[wi] != er.Misses[wi] {
					t.Fatalf("rate-1 misses[%d] %d vs %d (seed %d shape %d)", wi, sr.Misses[wi], er.Misses[wi], seed, shape)
				}
			}
		}
	})
}
