package validate

import (
	"runtime"
	"sync"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/obs"
)

// Case is one independent nest in a differential sweep: an analysis and the
// concrete bounds to evaluate it under.
type Case struct {
	Name     string
	Analysis *core.Analysis
	Env      expr.Env
}

// SweepOptions configures RunSweep.
type SweepOptions struct {
	// Parallelism bounds the worker pool: n > 1 uses n workers, 0 or 1 runs
	// sequentially, negative uses GOMAXPROCS.
	Parallelism int
	// Obs receives per-case "cachesim.*" counter flushes and
	// "simulate.total" timings. Instruments are atomic, so shards aggregate
	// exactly: counter totals are independent of Parallelism.
	Obs *obs.Metrics
	// Engine selects the simulation engine the predictions are compared
	// against: exact (default) walks the whole trace through StackSim,
	// sampled estimates from a SHARDS-style address sample, and analytic
	// evaluates the closed-form model itself (so Predicted == Simulated by
	// construction — useful to exercise the analytic plumbing under the
	// sweep's parallelism and comparison shape).
	Engine cachesim.Engine
	// Scalar selects the per-access reference pipeline (trace.RunScalar +
	// ReferenceSim.Access) instead of the batched one for the exact engine.
	// It exists for the benchmark baseline and for differential testing of
	// the batched path itself; results are identical either way. Ignored by
	// the sampled and analytic engines.
	Scalar bool
	// BlockSize overrides the trace block size for the batched pipeline;
	// 0 means trace.DefaultBlockSize.
	BlockSize int
	// SampleLog2Rate and SampleSeed configure the sampled engine: the
	// sampling rate is 2^-SampleLog2Rate (0 falls back to
	// cachesim.DefaultLog2Rate for the nest's address space) and seed 0
	// selects cachesim.DefaultSampleSeed.
	SampleLog2Rate int
	SampleSeed     uint64
}

// RunSweep cross-checks every case at every watched capacity, distributing
// independent cases over a bounded worker pool. out[i] holds case i's
// comparisons in input order regardless of scheduling; the returned error,
// if any, is the one the lowest-indexed case produced, matching a
// sequential sweep. Each case simulates into its own StackSim, so the only
// shared mutable state is the (atomic) obs registry — results are
// byte-identical at every parallelism level.
func RunSweep(cases []Case, watches []int64, opt SweepOptions) ([][]Comparison, error) {
	out := make([][]Comparison, len(cases))
	workers := opt.Parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		workers = 1
	}
	if workers <= 1 || len(cases) <= 1 {
		for i, c := range cases {
			cmps, err := runOne(c.Analysis, c.Env, watches, opt.Obs, opt)
			if err != nil {
				return nil, err
			}
			out[i] = cmps
		}
		return out, nil
	}

	errs := make([]error, len(cases))
	var next int
	var nextMu sync.Mutex
	take := func() int {
		nextMu.Lock()
		i := next
		next++
		nextMu.Unlock()
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i >= len(cases) {
					return
				}
				out[i], errs[i] = runOne(cases[i].Analysis, cases[i].Env, watches, opt.Obs, opt)
			}
		}()
	}
	wg.Wait()
	// Indices are handed out in increasing order and every started case runs
	// to completion, so the earliest failure is always observed.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
