package validate

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/nestgen"
	"repro/internal/obs"
	"repro/internal/testutil"
)

// sweepCorpus generates a small deterministic corpus for sweep tests.
func sweepCorpus(t *testing.T, n int) []Case {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	cases := make([]Case, 0, n)
	for i := 0; i < n; i++ {
		cfg := nestgen.Config{Imperfect: i%2 == 0, Tiled: i%3 == 0}
		nest, env := testutil.GenerateNest(t, r, i, cfg)
		a, err := core.Analyze(nest)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, Case{Name: nest.Name, Analysis: a, Env: env})
	}
	return cases
}

// TestRunSweepDeterministic pins the sharded sweep's determinism claim:
// identical comparisons and identical aggregated cachesim counters at every
// parallelism level, with the scalar and batched pipelines also agreeing.
func TestRunSweepDeterministic(t *testing.T) {
	cases := sweepCorpus(t, 9)
	watches := []int64{8, 64, 256}

	type outcome struct {
		cmps     [][]Comparison
		counters map[string]int64
	}
	runAt := func(parallelism int, scalar bool) outcome {
		m := obs.New()
		cmps, err := RunSweep(cases, watches, SweepOptions{Parallelism: parallelism, Obs: m, Scalar: scalar})
		if err != nil {
			t.Fatalf("sweep (j=%d scalar=%v): %v", parallelism, scalar, err)
		}
		return outcome{cmps: cmps, counters: m.Counters()}
	}

	ref := runAt(1, true) // sequential scalar reference
	for _, cfg := range []struct {
		j      int
		scalar bool
	}{{1, false}, {4, false}, {8, false}, {8, true}, {-1, false}} {
		got := runAt(cfg.j, cfg.scalar)
		if !reflect.DeepEqual(got.cmps, ref.cmps) {
			t.Fatalf("comparisons at j=%d scalar=%v diverge from sequential scalar reference",
				cfg.j, cfg.scalar)
		}
		if !reflect.DeepEqual(got.counters, ref.counters) {
			t.Fatalf("obs counters at j=%d scalar=%v diverge:\n%v\nwant\n%v",
				cfg.j, cfg.scalar, got.counters, ref.counters)
		}
	}
}

// TestRunSweepEarliestError checks that with several failing cases the
// error reported is the lowest-indexed one, as a sequential sweep would
// report.
func TestRunSweepEarliestError(t *testing.T) {
	cases := sweepCorpus(t, 6)
	// Break cases 2 and 4 by removing a bound their traces need.
	breakCase := func(i int) {
		env := expr.Env{}
		for k, v := range cases[i].Env {
			env[k] = v
		}
		for k := range env {
			delete(env, k)
			break
		}
		cases[i].Env = env
	}
	breakCase(2)
	breakCase(4)
	// Ensure deleting a symbol actually breaks evaluation.
	if _, err := RunSweep(cases[2:3], []int64{8}, SweepOptions{}); err == nil {
		t.Skip("corpus case needs no bounds; cannot construct failure")
	}
	for _, j := range []int{1, 8} {
		_, err := RunSweep(cases, []int64{8}, SweepOptions{Parallelism: j})
		if err == nil {
			t.Fatalf("j=%d: expected error", j)
		}
		_, seqErr := RunSweep(cases[2:3], []int64{8}, SweepOptions{})
		if err.Error() != seqErr.Error() {
			t.Fatalf("j=%d: got %q, want earliest failure %q", j, err, seqErr)
		}
	}
}

// TestRunObservedBatchedMatchesScalar pins RunObserved (now on the batched
// pipeline) to the scalar reference path on the sweep corpus.
func TestRunObservedBatchedMatchesScalar(t *testing.T) {
	cases := sweepCorpus(t, 4)
	watches := []int64{4, 16, 128}
	for _, c := range cases {
		batched, err := RunObserved(c.Analysis, c.Env, watches, nil)
		if err != nil {
			t.Fatal(err)
		}
		scalar, err := RunSweep([]Case{c}, watches, SweepOptions{Scalar: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched, scalar[0]) {
			t.Fatalf("%s: batched and scalar comparisons diverge", c.Name)
		}
	}
}

// TestRunSweepOddBlockSize runs the sweep at a deliberately tiny block size
// to force many mid-loop flushes.
func TestRunSweepOddBlockSize(t *testing.T) {
	cases := sweepCorpus(t, 3)
	watches := []int64{8, 64}
	ref, err := RunSweep(cases, watches, SweepOptions{Scalar: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSweep(cases, watches, SweepOptions{BlockSize: 3, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("block size 3 diverges from scalar reference")
	}
}

// TestSweepCaseNames is a sanity check that corpus names are distinct (the
// sweep result is positional; names are for reporting only).
func TestSweepCaseNames(t *testing.T) {
	cases := sweepCorpus(t, 5)
	seen := map[string]bool{}
	for _, c := range cases {
		if c.Name == "" || strings.TrimSpace(c.Name) == "" {
			t.Fatal("empty case name")
		}
		seen[c.Name] = true
	}
	if len(seen) < 2 {
		t.Fatalf("corpus names not distinct: %v", seen)
	}
}
