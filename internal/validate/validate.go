// Package validate cross-checks the analytical cache model against the
// exact trace simulator, per reference site and per cache capacity. It is
// the machinery behind the repository's accuracy claims: tests use it to
// bound the model's error, and cmd/cachechar exposes it to users who want
// to audit the model on their own nests.
package validate

import (
	"fmt"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/cachesim/analytic"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/obs"
	"repro/internal/trace"
)

// SiteComparison is the predicted-vs-simulated record for one reference
// site at one cache capacity.
type SiteComparison struct {
	SiteKey   string
	Accesses  int64
	Predicted int64
	Simulated int64
}

// AbsErr returns |Predicted − Simulated|.
func (s SiteComparison) AbsErr() int64 {
	d := s.Predicted - s.Simulated
	if d < 0 {
		d = -d
	}
	return d
}

// Comparison is the full cross-check at one cache capacity.
type Comparison struct {
	CacheElems     int64
	Accesses       int64
	PredictedTotal int64
	SimulatedTotal int64
	Sites          []SiteComparison
	// PredictedCompulsory and SimulatedCompulsory compare first-touch
	// counts with the simulator's distinct-address count; these must match
	// exactly for programs in the class (every element's first access is a
	// first touch in exactly one component).
	PredictedCompulsory int64
	SimulatedCompulsory int64
}

// RelErr returns |predicted − simulated| / simulated for the totals.
func (c Comparison) RelErr() float64 {
	if c.SimulatedTotal == 0 {
		if c.PredictedTotal == 0 {
			return 0
		}
		return 1
	}
	d := c.PredictedTotal - c.SimulatedTotal
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(c.SimulatedTotal)
}

// Run analyzes nothing new: it evaluates an existing analysis under env at
// each watched capacity, simulates the exact trace once, and returns one
// Comparison per capacity.
func Run(a *core.Analysis, env expr.Env, watches []int64) ([]Comparison, error) {
	return RunObserved(a, env, watches, nil)
}

// RunObserved is Run with observability: the simulation is timed under the
// "simulate.total" timer and the simulator's operation counters are flushed
// into the registry's "cachesim.*" counters. A nil registry disables
// recording (Run is exactly RunObserved with nil).
//
// The simulation goes through the batched pipeline (trace.RunBlocks feeding
// cachesim.AccessBlock); results and counter values are identical to the
// per-access path, which remains reachable via RunSweep's Scalar option.
func RunObserved(a *core.Analysis, env expr.Env, watches []int64, m *obs.Metrics) ([]Comparison, error) {
	return runOne(a, env, watches, m, SweepOptions{})
}

// runOne is the shared body of RunObserved and RunSweep shards: simulate
// once through the selected engine, compare at every watched capacity.
func runOne(a *core.Analysis, env expr.Env, watches []int64, m *obs.Metrics, opt SweepOptions) ([]Comparison, error) {
	res, err := simulateOne(a, env, watches, m, opt)
	if err != nil {
		return nil, err
	}

	// Bind the environment into one frame and reuse it across the capacity
	// sweep: the per-capacity predictions share every expression evaluation.
	f := a.SymTab().FrameOf(env)
	sites := a.Nest.Sites() // trace.Compile assigns site ids in this order
	var out []Comparison
	for wi, cap := range watches {
		rep, err := a.PredictMissesFrame(f, cap)
		if err != nil {
			return nil, err
		}
		cmp := Comparison{
			CacheElems:          cap,
			Accesses:            res.Accesses,
			PredictedTotal:      rep.Total,
			SimulatedTotal:      res.Misses[wi],
			SimulatedCompulsory: res.Distinct,
		}
		for _, d := range rep.Detail {
			if d.Component.SD.Base.IsInf() {
				cmp.PredictedCompulsory += d.Count
			}
		}
		for si, site := range sites {
			cmp.Sites = append(cmp.Sites, SiteComparison{
				SiteKey:   site.Key(),
				Accesses:  res.PerSite[si].Accesses,
				Predicted: rep.BySite[site.Key()],
				Simulated: res.PerSite[si].Misses[wi],
			})
		}
		out = append(out, cmp)
	}
	return out, nil
}

// simulateOne produces the "Simulated" side of a comparison through the
// engine opt selects, timed under "simulate.total" with the engine's
// counters flushed into m.
func simulateOne(a *core.Analysis, env expr.Env, watches []int64, m *obs.Metrics, opt SweepOptions) (cachesim.Results, error) {
	sw := m.Timer("simulate.total").Start()
	defer sw.Stop()
	switch opt.Engine {
	case cachesim.EngineAnalytic:
		// No trace at all: the closed form is the simulated side.
		res, _, err := analytic.Simulate(a, env, watches)
		return res, err
	case cachesim.EngineSampled:
		p, err := trace.Compile(a.Nest, env)
		if err != nil {
			return cachesim.Results{}, err
		}
		k := opt.SampleLog2Rate
		if k <= 0 {
			k = cachesim.DefaultLog2Rate(p.Size)
		}
		sim := cachesim.NewSampledSim(p.Size, len(p.Sites), watches, k, opt.SampleSeed)
		p.RunBlocks(opt.BlockSize, sim.AccessBlock)
		sim.FlushMetrics(m)
		return sim.Results(), nil
	default: // cachesim.EngineExact
		p, err := trace.Compile(a.Nest, env)
		if err != nil {
			return cachesim.Results{}, err
		}
		if opt.Scalar {
			// The frozen pre-batching pipeline: per-access emission into the
			// Fenwick-tree reference simulator. Kept both as a benchmark
			// baseline and as an independent implementation to diff against.
			ref := cachesim.NewReferenceSim(p.Size, len(p.Sites), watches)
			p.RunScalar(ref.Access)
			ref.FlushMetrics(m)
			return ref.Results(), nil
		}
		sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
		p.RunBlocks(opt.BlockSize, sim.AccessBlock)
		sim.FlushMetrics(m)
		return sim.Results(), nil
	}
}

// SimulatedMisses compiles a nest's reference trace and runs the exact
// stack simulator once at a single capacity, returning the ground-truth
// miss count. It needs no analysis — which is the point: the joint-search
// differential tests and bench-optimize use it to check transformed nests
// against the simulator directly, independent of the model that ranked
// them.
func SimulatedMisses(nest *loopir.Nest, env expr.Env, cacheElems int64) (int64, error) {
	p, err := trace.Compile(nest, env)
	if err != nil {
		return 0, err
	}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), []int64{cacheElems})
	p.RunBlocks(trace.DefaultBlockSize, sim.AccessBlock)
	return sim.Results().Misses[0], nil
}

// SimulatedMissesGeom is SimulatedMisses under an explicit set-associative
// geometry: the nest's trace driven through the AssocCache LRU simulator.
// Line-granular simulation is what makes loop-order differences observable
// (SNIPPET 2's matmul ratios are spatial-locality effects the
// element-granular stack simulator cannot see), so the joint-search checks
// use this form whenever the request models a real geometry.
func SimulatedMissesGeom(nest *loopir.Nest, env expr.Env, cacheElems, ways, lineElems int64) (int64, error) {
	if ways <= 0 {
		return SimulatedMisses(nest, env, cacheElems)
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		return 0, err
	}
	c, err := cachesim.NewAssocCache(cacheElems, int(ways), lineElems)
	if err != nil {
		return 0, err
	}
	p.RunBlocks(0, func(_ []int32, addrs []int64) { c.AccessBlock(addrs) })
	return c.Misses(), nil
}

// Format renders comparisons as an aligned report.
func Format(cmps []Comparison) string {
	var b strings.Builder
	for _, c := range cmps {
		fmt.Fprintf(&b, "cache %d elements: predicted %d vs simulated %d (rel err %.3f%%)\n",
			c.CacheElems, c.PredictedTotal, c.SimulatedTotal, 100*c.RelErr())
		for _, s := range c.Sites {
			fmt.Fprintf(&b, "  %-10s predicted %12d  simulated %12d  (of %d accesses)\n",
				s.SiteKey, s.Predicted, s.Simulated, s.Accesses)
		}
	}
	return b.String()
}

// CheckCompulsory verifies the exactness invariant on first touches.
func CheckCompulsory(cmps []Comparison) error {
	for _, c := range cmps {
		if c.PredictedCompulsory != c.SimulatedCompulsory {
			return fmt.Errorf("validate: compulsory misses %d predicted vs %d distinct addresses",
				c.PredictedCompulsory, c.SimulatedCompulsory)
		}
	}
	return nil
}
