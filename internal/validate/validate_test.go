package validate

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/kernels"
)

func TestRunOnTiledMatmul(t *testing.T) {
	nest, err := kernels.TiledMatmul()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env, err := kernels.MatmulEnv(32, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	cmps, err := Run(a, env, []int64{64, 512, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 3 {
		t.Fatalf("got %d comparisons", len(cmps))
	}
	if err := CheckCompulsory(cmps); err != nil {
		t.Fatal(err)
	}
	for _, c := range cmps {
		if c.RelErr() > 0.10 {
			t.Errorf("cache %d: rel err %.3f", c.CacheElems, c.RelErr())
		}
		var siteSumP, siteSumS int64
		for _, s := range c.Sites {
			siteSumP += s.Predicted
			siteSumS += s.Simulated
		}
		if siteSumP != c.PredictedTotal {
			t.Errorf("per-site predicted %d != total %d", siteSumP, c.PredictedTotal)
		}
		if siteSumS != c.SimulatedTotal {
			t.Errorf("per-site simulated %d != total %d", siteSumS, c.SimulatedTotal)
		}
	}
	out := Format(cmps)
	if !strings.Contains(out, "predicted") || !strings.Contains(out, "S1#0") {
		t.Fatalf("bad formatting:\n%s", out)
	}
}

func TestRunOnTwoIndex(t *testing.T) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env, err := kernels.TwoIndexEnv(32, 8, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	cmps, err := Run(a, env, []int64{128, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCompulsory(cmps); err != nil {
		t.Fatal(err)
	}
	for _, c := range cmps {
		if c.RelErr() > 0.15 {
			t.Errorf("cache %d: predicted %d vs simulated %d (rel err %.3f)",
				c.CacheElems, c.PredictedTotal, c.SimulatedTotal, c.RelErr())
		}
	}
}

func TestRelErrEdgeCases(t *testing.T) {
	if (Comparison{}).RelErr() != 0 {
		t.Error("0/0 should be 0")
	}
	c := Comparison{PredictedTotal: 5}
	if c.RelErr() != 1 {
		t.Error("n/0 should be 1")
	}
	s := SiteComparison{Predicted: 3, Simulated: 7}
	if s.AbsErr() != 4 {
		t.Error("AbsErr")
	}
}

func TestRunRejectsBadEnv(t *testing.T) {
	nest, err := kernels.TiledMatmul()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(a, expr.Env{"N": 8}, []int64{64}); err == nil {
		t.Fatal("missing tile symbols accepted")
	}
}
