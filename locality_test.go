package repro

import "testing"

// TestPublicAPIEndToEnd drives the facade the way the README's quickstart
// does: build a kernel, analyze, predict, simulate, search tiles, and
// predict parallel time.
func TestPublicAPIEndToEnd(t *testing.T) {
	nest, err := TiledMatmul()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{"N": 64, "TI": 8, "TJ": 8, "TK": 8}
	const cache = 1024
	rep, err := PredictMisses(a, env, cache)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total <= 0 || rep.Accesses != 3*64*64*64 {
		t.Fatalf("report total=%d accesses=%d", rep.Total, rep.Accesses)
	}
	sim, err := SimulateMisses(nest, env, []int64{cache})
	if err != nil {
		t.Fatal(err)
	}
	simMisses, err := sim.MissesFor(cache)
	if err != nil {
		t.Fatal(err)
	}
	diff := rep.Total - simMisses
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.10*float64(simMisses)+4*64*64 {
		t.Fatalf("predicted %d vs simulated %d", rep.Total, simMisses)
	}

	res, err := SearchTiles(a, TileSearchOptions{
		Dims:       []TileDim{{Symbol: "TI", Max: 64}, {Symbol: "TJ", Max: 64}, {Symbol: "TK", Max: 64}},
		CacheElems: cache,
		BaseEnv:    Env{"N": 64},
		DivisorOf:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Misses > rep.Total {
		t.Fatalf("search best %v worse than the arbitrary tiles (%d)", res.Best, rep.Total)
	}

	two, err := TiledTwoIndex()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(two)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := PredictParallel(a2, Env{
		"NI": 64, "NJ": 64, "NM": 64, "NN": 64,
		"TI": 16, "TJ": 16, "TM": 16, "TN": 16,
	}, SMPConfig{Procs: 2, SplitSymbol: "NN", CacheElems: cache})
	if err != nil {
		t.Fatal(err)
	}
	if pred.PerProcFlops <= 0 || pred.TimeBusBound < pred.TimeInfiniteBW {
		t.Fatalf("bad prediction %+v", pred)
	}
}
