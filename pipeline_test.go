package repro

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/smp"
	"repro/internal/tce"
	"repro/internal/tilesearch"
	"repro/internal/trace"
	"repro/internal/validate"
)

// TestFullPipeline drives the complete TCE workflow the paper describes,
// end to end: tensor contraction specification → operation minimization →
// code generation → loop fusion → cache characterization → tile selection
// → SMP prediction, with exact-simulation validation at each analyzable
// stage.
func TestFullPipeline(t *testing.T) {
	// 1. The chemistry input: B(m,n) = Σ_{i,j} C1(m,i)·C2(n,j)·A(i,j).
	contraction, ranges := tce.TwoIndexTransform()
	if err := contraction.Validate(ranges); err != nil {
		t.Fatal(err)
	}

	// 2. Operation minimization.
	plan, err := tce.OpMin(contraction, ranges, expr.Env{"N": 100, "V": 100})
	if err != nil {
		t.Fatal(err)
	}
	steps := plan.Sequence()
	if len(steps) != 2 {
		t.Fatalf("plan has %d steps", len(steps))
	}

	// 3. Code generation (unfused) and mechanical fusion.
	unfused, err := tce.GenLoopNest("pipeline-unfused", steps, ranges)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := loopir.FuseAdjacent(unfused)
	if err != nil {
		t.Fatal(err)
	}
	if fused.LoopCount() >= unfused.LoopCount() {
		t.Fatal("fusion had no effect")
	}

	// 4. Full storage contraction via the fused transform chain.
	chainNest, err := tce.GenFusedTransformChain("pipeline-chain", steps, ranges)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := tce.NormalizeChain(steps)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := tce.FusedChainMemory(chain, ranges).Eval(expr.Env{"N": 64, "V": 48})
	if err != nil {
		t.Fatal(err)
	}
	if mem != 1 { // the two-index intermediate contracts to a scalar
		t.Fatalf("fused chain memory %d, want 1", mem)
	}

	// 5. Cache characterization of every generated form, validated.
	env := expr.Env{"N": 24, "V": 16}
	for _, nest := range []*loopir.Nest{unfused, fused, chainNest} {
		a, err := core.Analyze(nest)
		if err != nil {
			t.Fatalf("%s: %v", nest.Name, err)
		}
		cmps, err := validate.Run(a, env, []int64{128, 2048})
		if err != nil {
			t.Fatal(err)
		}
		if err := validate.CheckCompulsory(cmps); err != nil {
			t.Fatalf("%s: %v", nest.Name, err)
		}
		for _, c := range cmps {
			if c.RelErr() > 0.25 {
				t.Errorf("%s at %d elements: rel err %.3f", nest.Name, c.CacheElems, c.RelErr())
			}
		}
	}

	// 6. The production path: the hand-tiled Fig. 6 kernel, tile-searched
	// and SMP-predicted.
	tiled, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	ta, err := core.Analyze(tiled)
	if err != nil {
		t.Fatal(err)
	}
	const n = 128
	search, err := tilesearch.Search(ta, tilesearch.Options{
		Dims: []tilesearch.Dim{{Symbol: "TI", Max: n}, {Symbol: "TJ", Max: n},
			{Symbol: "TM", Max: n}, {Symbol: "TN", Max: n}},
		CacheElems: 2048,
		BaseEnv:    expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n},
		DivisorOf:  n,
	})
	if err != nil {
		t.Fatal(err)
	}
	tenv := expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n}
	for k, v := range search.Best.Tiles {
		tenv[k] = v
	}
	pred, err := smp.Predict(ta, tenv, smp.Config{
		Procs: 2, SplitSymbol: "NN", CacheElems: 2048, Model: smp.DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred.PerProcFlops != 2*2*n*n*n/2 {
		t.Errorf("per-proc flops %d", pred.PerProcFlops)
	}

	// 7. The searched tiles must beat naive equal tiles under exact
	// simulation (the end-to-end payoff).
	simMisses := func(tiles map[string]int64) int64 {
		e := expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n}
		for k, v := range tiles {
			e[k] = v
		}
		p, err := trace.Compile(tiled, e)
		if err != nil {
			t.Fatal(err)
		}
		sim := cachesim.NewStackSim(p.Size, len(p.Sites), []int64{2048})
		p.Run(sim.Access)
		m, err := sim.Results().MissesFor(2048)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	best := simMisses(search.Best.Tiles)
	equi := simMisses(map[string]int64{"TI": 32, "TJ": 32, "TM": 32, "TN": 32})
	if best > equi {
		t.Errorf("searched tiles %v simulate to %d misses, equi-32 to %d", search.Best.Tiles, best, equi)
	}
}
