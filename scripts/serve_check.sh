#!/bin/sh
# serve_check: end-to-end lifecycle check of analysisd — start it on a free
# port, wait for readiness, exercise one request per endpoint, send SIGTERM,
# and require a clean drain. CI runs this after the test suite.
set -eu

log=$(mktemp)
trap 'rm -f "$log"; kill "$pid" 2>/dev/null || true' EXIT

go build -o /tmp/analysisd ./cmd/analysisd
/tmp/analysisd -addr 127.0.0.1:0 >"$log" 2>&1 &
pid=$!

# Wait for the listen line and extract the bound address.
addr=""
for i in $(seq 1 50); do
    addr=$(sed -n 's/^analysisd listening on //p' "$log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "serve_check: analysisd died:"; cat "$log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve_check: no listen line"; cat "$log"; exit 1; }
base="http://$addr"

# Readiness.
curl -sf "$base/healthz" >/dev/null || { echo "serve_check: healthz failed"; exit 1; }

# One request per endpoint must answer the expected status (200 unless
# stated otherwise).
check() {
    want=$1; path=$2; body=$3
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d "$body" "$base$path")
    [ "$code" = "$want" ] || { echo "serve_check: POST $path -> $code (want $want)"; exit 1; }
}
check 200 /v1/analyze    '{"kernel":"matmul","n":16,"tiles":[4,4,4]}'
check 200 /v1/predict    '{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}'
check 200 /v1/tilesearch '{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"dims":{"TI":32,"TJ":32,"TK":32}}'

# The set-associative geometry fields: a direct-mapped predict answers 200,
# an invalid geometry (ways not dividing the line count) is a 400.
check 200 /v1/predict    '{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":1,"line":4}'
check 400 /v1/predict    '{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":3}'
check 200 /v1/tilesearch '{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"ways":2,"dims":{"TI":32,"TJ":32,"TK":32}}'

# Every simulation engine must answer 200 on the same problem; an unknown
# engine is a 400, and the analytic engine answers the n=2048 problem that
# the exact engine's trace budget rejects.
for engine in exact analytic sampled; do
    check 200 /v1/simulate "{\"kernel\":\"matmul\",\"n\":16,\"tiles\":[4,4,4],\"watchKB\":[1,4],\"engine\":\"$engine\"}"
done
check 200 /v1/simulate '{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4]}'
check 400 /v1/simulate '{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4],"engine":"bogus"}'
check 400 /v1/simulate '{"kernel":"matmul","n":2048,"tiles":[64,64,64],"watchKB":[16],"engine":"exact"}'
check 200 /v1/simulate '{"kernel":"matmul","n":2048,"tiles":[64,64,64],"watchKB":[16],"engine":"analytic"}'

# Graceful drain: SIGTERM must produce a clean exit and the drain line.
kill -TERM "$pid"
wait "$pid" || { echo "serve_check: non-zero exit after SIGTERM"; cat "$log"; exit 1; }
grep -q "drained cleanly" "$log" || { echo "serve_check: no clean-drain line"; cat "$log"; exit 1; }

echo "serve_check: OK ($base)"
