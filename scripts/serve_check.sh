#!/bin/sh
# serve_check: end-to-end lifecycle check of analysisd — start it on a free
# port, wait for readiness, exercise one request per endpoint, send SIGTERM,
# and require a clean drain — then the same for the cluster tier: an
# analysisrouter in front of two replicas, routed requests, the
# all-backends-down 503, and a clean router drain. CI runs this after the
# test suite.
set -eu

log=$(mktemp)
r1log=$(mktemp); r2log=$(mktemp); rtlog=$(mktemp)
pid=""; r1pid=""; r2pid=""; rtpid=""
trap 'rm -f "$log" "$r1log" "$r2log" "$rtlog"; kill $pid $r1pid $r2pid $rtpid 2>/dev/null || true' EXIT

# wait_listen LOGFILE PREFIX PID: poll LOGFILE for "PREFIX ADDR" and print
# the bound address.
wait_listen() {
    wl_addr=""
    for i in $(seq 1 50); do
        wl_addr=$(sed -n "s/^$2 //p" "$1" | head -n 1 | cut -d' ' -f1)
        [ -n "$wl_addr" ] && break
        kill -0 "$3" 2>/dev/null || { echo "serve_check: ${2%% *} died:" >&2; cat "$1" >&2; return 1; }
        sleep 0.1
    done
    [ -n "$wl_addr" ] || { echo "serve_check: no listen line in $1" >&2; cat "$1" >&2; return 1; }
    echo "$wl_addr"
}

go build -o /tmp/analysisd ./cmd/analysisd
# -max-batch 4 so the oversized-batch rejection below is reachable with a
# small request.
/tmp/analysisd -addr 127.0.0.1:0 -max-batch 4 >"$log" 2>&1 &
pid=$!

# Wait for the listen line and extract the bound address.
addr=""
for i in $(seq 1 50); do
    addr=$(sed -n 's/^analysisd listening on //p' "$log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "serve_check: analysisd died:"; cat "$log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve_check: no listen line"; cat "$log"; exit 1; }
base="http://$addr"

# Readiness.
curl -sf "$base/healthz" >/dev/null || { echo "serve_check: healthz failed"; exit 1; }

# One request per endpoint must answer the expected status (200 unless
# stated otherwise).
check() {
    want=$1; path=$2; body=$3
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d "$body" "$base$path")
    [ "$code" = "$want" ] || { echo "serve_check: POST $path -> $code (want $want)"; exit 1; }
}
check 200 /v1/analyze    '{"kernel":"matmul","n":16,"tiles":[4,4,4]}'
check 200 /v1/predict    '{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}'
check 200 /v1/tilesearch '{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"dims":{"TI":32,"TJ":32,"TK":32}}'

# The set-associative geometry fields: a direct-mapped predict answers 200,
# an invalid geometry (ways not dividing the line count) is a 400.
check 200 /v1/predict    '{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":1,"line":4}'
check 400 /v1/predict    '{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":3}'
check 200 /v1/tilesearch '{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"ways":2,"dims":{"TI":32,"TJ":32,"TK":32}}'

# Every simulation engine must answer 200 on the same problem; an unknown
# engine is a 400, and the analytic engine answers the n=2048 problem that
# the exact engine's trace budget rejects.
for engine in exact analytic sampled; do
    check 200 /v1/simulate "{\"kernel\":\"matmul\",\"n\":16,\"tiles\":[4,4,4],\"watchKB\":[1,4],\"engine\":\"$engine\"}"
done
check 200 /v1/simulate '{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4]}'
check 400 /v1/simulate '{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4],"engine":"bogus"}'
check 400 /v1/simulate '{"kernel":"matmul","n":2048,"tiles":[64,64,64],"watchKB":[16],"engine":"exact"}'
check 200 /v1/simulate '{"kernel":"matmul","n":2048,"tiles":[64,64,64],"watchKB":[16],"engine":"analytic"}'

# The joint transformation search: a happy path on the unfused two-index
# chain answers 200 with a non-identity winner; disabling every axis with
# no dims is a 400, as is a missing cache capacity.
opt_body='{"kernel":"twoindexchain","n":32,"cacheElems":256,"autoTile":false}'
resp=$(curl -s -X POST -d "$opt_body" "$base/v1/optimize")
case $resp in
    *'"bestPlan":"fuse"'*) ;;
    *) echo "serve_check: optimize best plan wrong: $resp"; exit 1 ;;
esac
check 400 /v1/optimize '{"kernel":"twoindexchain","n":32,"cacheElems":256,"permute":false,"fuse":false,"autoTile":false}'
check 400 /v1/optimize '{"kernel":"twoindexchain","n":32}'

# Batch: a mixed items+candidates happy path answers 200 with a fully-ok
# summary; a batch above -max-batch is rejected whole with 429.
batch_body='{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI","TJ","TK"],"sets":[[2,4,4],[4,4,4],[8,8,8]]}}'
resp=$(curl -s -X POST -d "$batch_body" "$base/v1/batch")
case $resp in
    *'"summary":{"items":3,"ok":3,"errors":0}'*) ;;
    *) echo "serve_check: batch summary wrong: $resp"; exit 1 ;;
esac
check 429 /v1/batch '{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI","TJ","TK"],"sets":[[2,4,4],[4,4,4],[8,8,8],[2,2,2],[4,2,2]]}}'

# Streaming: the batch stream ends in the counting trailer, the tilesearch
# stream in the ok trailer, and ?stream=1 on a point endpoint is a 400.
last=$(curl -s -X POST -d "$batch_body" "$base/v1/batch?stream=1" | tail -n 1)
[ "$last" = '{"summary":{"items":3,"ok":3,"errors":0}}' ] || { echo "serve_check: batch stream trailer: $last"; exit 1; }
last=$(curl -s -X POST -d '{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"dims":{"TI":32,"TJ":32,"TK":32}}' \
    "$base/v1/tilesearch?stream=1" | tail -n 1)
[ "$last" = '{"summary":{"ok":true}}' ] || { echo "serve_check: tilesearch stream trailer: $last"; exit 1; }
last=$(curl -s -X POST -d "$opt_body" "$base/v1/optimize?stream=1" | tail -n 1)
[ "$last" = '{"summary":{"ok":true}}' ] || { echo "serve_check: optimize stream trailer: $last"; exit 1; }
check 400 '/v1/predict?stream=1' '{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}'

# Graceful drain: SIGTERM must produce a clean exit and the drain line.
kill -TERM "$pid"
wait "$pid" || { echo "serve_check: non-zero exit after SIGTERM"; cat "$log"; exit 1; }
grep -q "drained cleanly" "$log" || { echo "serve_check: no clean-drain line"; cat "$log"; exit 1; }
pid=""

echo "serve_check: OK ($base)"

# --- Cluster tier: analysisrouter in front of two replicas. ---

go build -o /tmp/analysisrouter ./cmd/analysisrouter
/tmp/analysisd -addr 127.0.0.1:0 >"$r1log" 2>&1 &
r1pid=$!
/tmp/analysisd -addr 127.0.0.1:0 >"$r2log" 2>&1 &
r2pid=$!
r1addr=$(wait_listen "$r1log" "analysisd listening on" "$r1pid")
r2addr=$(wait_listen "$r2log" "analysisd listening on" "$r2pid")

/tmp/analysisrouter -addr 127.0.0.1:0 \
    -replicas "http://$r1addr,http://$r2addr" \
    -probe-interval 100ms -hedge 50ms >"$rtlog" 2>&1 &
rtpid=$!
rtaddr=$(wait_listen "$rtlog" "analysisrouter listening on" "$rtpid")
base="http://$rtaddr"

# Router readiness, and the enriched health view must report both replicas.
curl -sf "$base/healthz" >/dev/null || { echo "serve_check: router healthz failed"; exit 1; }
health=$(curl -sf "$base/healthz?v=1")
case $health in
    *'"replicas"'*) ;;
    *) echo "serve_check: router healthz?v=1 lacks replicas: $health"; exit 1 ;;
esac

# Routed requests answer through the backends with the backends' bytes:
# a point predict, and a split candidates batch whose reassembled summary
# matches what one backend would serve.
check 200 /v1/predict '{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}'
resp=$(curl -s -X POST -d "$batch_body" "$base/v1/batch")
case $resp in
    *'"summary":{"items":3,"ok":3,"errors":0}'*) ;;
    *) echo "serve_check: routed batch summary wrong: $resp"; exit 1 ;;
esac
last=$(curl -s -X POST -d "$batch_body" "$base/v1/batch?stream=1" | tail -n 1)
[ "$last" = '{"summary":{"items":3,"ok":3,"errors":0}}' ] || { echo "serve_check: routed batch stream trailer: $last"; exit 1; }

# All backends down: drain both replicas, then the router must answer 503
# "no healthy replica" (transport failures and the prober both report it).
kill -TERM "$r1pid" "$r2pid"
wait "$r1pid" || { echo "serve_check: replica 1 non-zero exit"; cat "$r1log"; exit 1; }
wait "$r2pid" || { echo "serve_check: replica 2 non-zero exit"; cat "$r2log"; exit 1; }
r1pid=""; r2pid=""
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}' "$base/v1/predict")
[ "$code" = "503" ] || { echo "serve_check: router with no backends -> $code (want 503)"; exit 1; }

# Graceful router drain: SIGTERM, clean exit, the drain line.
kill -TERM "$rtpid"
wait "$rtpid" || { echo "serve_check: router non-zero exit after SIGTERM"; cat "$rtlog"; exit 1; }
grep -q "analysisrouter: drained cleanly" "$rtlog" || { echo "serve_check: no router clean-drain line"; cat "$rtlog"; exit 1; }
rtpid=""

echo "serve_check: cluster OK ($base)"
