#!/bin/sh
# serve_check: end-to-end lifecycle check of analysisd — start it on a free
# port, wait for readiness, exercise one request per endpoint, send SIGTERM,
# and require a clean drain. CI runs this after the test suite.
set -eu

log=$(mktemp)
trap 'rm -f "$log"; kill "$pid" 2>/dev/null || true' EXIT

go build -o /tmp/analysisd ./cmd/analysisd
# -max-batch 4 so the oversized-batch rejection below is reachable with a
# small request.
/tmp/analysisd -addr 127.0.0.1:0 -max-batch 4 >"$log" 2>&1 &
pid=$!

# Wait for the listen line and extract the bound address.
addr=""
for i in $(seq 1 50); do
    addr=$(sed -n 's/^analysisd listening on //p' "$log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "serve_check: analysisd died:"; cat "$log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve_check: no listen line"; cat "$log"; exit 1; }
base="http://$addr"

# Readiness.
curl -sf "$base/healthz" >/dev/null || { echo "serve_check: healthz failed"; exit 1; }

# One request per endpoint must answer the expected status (200 unless
# stated otherwise).
check() {
    want=$1; path=$2; body=$3
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d "$body" "$base$path")
    [ "$code" = "$want" ] || { echo "serve_check: POST $path -> $code (want $want)"; exit 1; }
}
check 200 /v1/analyze    '{"kernel":"matmul","n":16,"tiles":[4,4,4]}'
check 200 /v1/predict    '{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}'
check 200 /v1/tilesearch '{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"dims":{"TI":32,"TJ":32,"TK":32}}'

# The set-associative geometry fields: a direct-mapped predict answers 200,
# an invalid geometry (ways not dividing the line count) is a 400.
check 200 /v1/predict    '{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":1,"line":4}'
check 400 /v1/predict    '{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":3}'
check 200 /v1/tilesearch '{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"ways":2,"dims":{"TI":32,"TJ":32,"TK":32}}'

# Every simulation engine must answer 200 on the same problem; an unknown
# engine is a 400, and the analytic engine answers the n=2048 problem that
# the exact engine's trace budget rejects.
for engine in exact analytic sampled; do
    check 200 /v1/simulate "{\"kernel\":\"matmul\",\"n\":16,\"tiles\":[4,4,4],\"watchKB\":[1,4],\"engine\":\"$engine\"}"
done
check 200 /v1/simulate '{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4]}'
check 400 /v1/simulate '{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4],"engine":"bogus"}'
check 400 /v1/simulate '{"kernel":"matmul","n":2048,"tiles":[64,64,64],"watchKB":[16],"engine":"exact"}'
check 200 /v1/simulate '{"kernel":"matmul","n":2048,"tiles":[64,64,64],"watchKB":[16],"engine":"analytic"}'

# The joint transformation search: a happy path on the unfused two-index
# chain answers 200 with a non-identity winner; disabling every axis with
# no dims is a 400, as is a missing cache capacity.
opt_body='{"kernel":"twoindexchain","n":32,"cacheElems":256,"autoTile":false}'
resp=$(curl -s -X POST -d "$opt_body" "$base/v1/optimize")
case $resp in
    *'"bestPlan":"fuse"'*) ;;
    *) echo "serve_check: optimize best plan wrong: $resp"; exit 1 ;;
esac
check 400 /v1/optimize '{"kernel":"twoindexchain","n":32,"cacheElems":256,"permute":false,"fuse":false,"autoTile":false}'
check 400 /v1/optimize '{"kernel":"twoindexchain","n":32}'

# Batch: a mixed items+candidates happy path answers 200 with a fully-ok
# summary; a batch above -max-batch is rejected whole with 429.
batch_body='{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI","TJ","TK"],"sets":[[2,4,4],[4,4,4],[8,8,8]]}}'
resp=$(curl -s -X POST -d "$batch_body" "$base/v1/batch")
case $resp in
    *'"summary":{"items":3,"ok":3,"errors":0}'*) ;;
    *) echo "serve_check: batch summary wrong: $resp"; exit 1 ;;
esac
check 429 /v1/batch '{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI","TJ","TK"],"sets":[[2,4,4],[4,4,4],[8,8,8],[2,2,2],[4,2,2]]}}'

# Streaming: the batch stream ends in the counting trailer, the tilesearch
# stream in the ok trailer, and ?stream=1 on a point endpoint is a 400.
last=$(curl -s -X POST -d "$batch_body" "$base/v1/batch?stream=1" | tail -n 1)
[ "$last" = '{"summary":{"items":3,"ok":3,"errors":0}}' ] || { echo "serve_check: batch stream trailer: $last"; exit 1; }
last=$(curl -s -X POST -d '{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"dims":{"TI":32,"TJ":32,"TK":32}}' \
    "$base/v1/tilesearch?stream=1" | tail -n 1)
[ "$last" = '{"summary":{"ok":true}}' ] || { echo "serve_check: tilesearch stream trailer: $last"; exit 1; }
last=$(curl -s -X POST -d "$opt_body" "$base/v1/optimize?stream=1" | tail -n 1)
[ "$last" = '{"summary":{"ok":true}}' ] || { echo "serve_check: optimize stream trailer: $last"; exit 1; }
check 400 '/v1/predict?stream=1' '{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}'

# Graceful drain: SIGTERM must produce a clean exit and the drain line.
kill -TERM "$pid"
wait "$pid" || { echo "serve_check: non-zero exit after SIGTERM"; cat "$log"; exit 1; }
grep -q "drained cleanly" "$log" || { echo "serve_check: no clean-drain line"; cat "$log"; exit 1; }

echo "serve_check: OK ($base)"
